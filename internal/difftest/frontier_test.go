package difftest_test

import (
	"testing"

	"repro/internal/checkers"
	"repro/internal/difftest"
)

// TestFrontierConformance replays every committed frontier seed through
// all three backends. Each pair must keep its pinned verdicts — the
// conforming side clean, the violating side flagged — so any future
// compiler or runtime change that moves a checker's decision boundary
// fails here with the exact packet pair that crossed it.
//
// Regenerate the corpus with:
//
//	go run ./cmd/hydra-bench -symcheck -frontierout internal/difftest/testdata/frontier
func TestFrontierConformance(t *testing.T) {
	files, err := difftest.LoadFrontierDir(difftest.FrontierSeedDir)
	if err != nil {
		t.Fatalf("loading frontier corpus: %v", err)
	}
	byChecker := make(map[string]difftest.FrontierFile, len(files))
	for _, f := range files {
		byChecker[f.Checker] = f
	}
	for _, p := range checkers.All {
		f, ok := byChecker[p.Key]
		if !ok {
			t.Errorf("%s: no committed frontier seeds", p.Key)
			continue
		}
		delete(byChecker, p.Key)
		t.Run(p.Key, func(t *testing.T) {
			if len(f.Pairs) == 0 {
				t.Fatal("empty frontier file")
			}
			comp, err := difftest.CompileCorpus(p.Key)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			model := checkers.SymModelFor(p.Key)
			for i, pair := range f.Pairs {
				for _, side := range []struct {
					label   string
					tr      []difftest.HopSpec
					reject  bool
					reports int
					violate bool
				}{
					{"conform", difftest.HopSpecs(pair.Conform), pair.ConformVerdict.Reject, pair.ConformVerdict.Reports, false},
					{"violate", difftest.HopSpecs(pair.Violate), pair.ViolateVerdict.Reject, pair.ViolateVerdict.Reports, true},
				} {
					r := comp.NewRunner()
					if err := r.ApplyModel(model); err != nil {
						t.Fatalf("pair %d %s: install model: %v", i, side.label, err)
					}
					out, err := r.RunTrace(side.tr)
					if err != nil {
						t.Fatalf("pair %d %s (%s): %v", i, side.label, pair.Cond, err)
					}
					if out.Reject != side.reject || len(out.Reports) != side.reports {
						t.Errorf("pair %d %s (%s): pinned reject=%v reports=%d, backends reject=%v reports=%d",
							i, side.label, pair.Cond, side.reject, side.reports, out.Reject, len(out.Reports))
					}
					if out.Violation() != side.violate {
						t.Errorf("pair %d %s (%s): violation=%v, want %v",
							i, side.label, pair.Cond, out.Violation(), side.violate)
					}
				}
			}
		})
	}
	for key := range byChecker {
		t.Errorf("frontier seed %s.json has no matching corpus checker", key)
	}
}
