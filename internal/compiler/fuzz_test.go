package compiler_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/difftest"
)

// TestFuzzDifferential generates random well-typed programs
// (difftest.RandomProgram), random control-plane state, and random
// traces, and requires the reference interpreter and the compiled
// pipeline to agree on verdicts, reports, and report payloads for every
// packet.
func TestFuzzDifferential(t *testing.T) {
	count := 150
	if testing.Short() {
		count = 30
	}
	run := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := difftest.RandomProgram(rng)

		h := difftest.NewHarness(t, src)

		// Random control state across up to 3 switches.
		for id := uint32(1); id <= 3; id++ {
			h.InstallScalar(id, "c0", uint64(rng.Intn(256)))
			for i := 0; i < rng.Intn(5); i++ {
				h.InstallDict(id, "d0", []uint64{uint64(rng.Intn(8))}, uint64(rng.Intn(256)))
				h.InstallDict(id, "d1", []uint64{uint64(rng.Intn(8)), uint64(rng.Intn(1000))}, uint64(rng.Intn(256)))
				h.InstallSet(id, "set0", uint64(rng.Intn(8)))
			}
		}

		// Several random traces through the same switch states, so
		// sensor persistence is exercised too.
		for p := 0; p < 3; p++ {
			n := 1 + rng.Intn(4)
			trace := make([]difftest.HopSpec, n)
			for i := range trace {
				trace[i] = difftest.HopSpec{
					SW: uint32(rng.Intn(3) + 1),
					Headers: map[string]uint64{
						"h0": uint64(rng.Intn(256)),
						"h1": uint64(rng.Intn(65536)),
					},
					PktLen: uint32(64 + rng.Intn(1400)),
				}
			}
			h.RunBoth(trace) // fails the test on any divergence
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}
