package compiler

import (
	"fmt"

	"repro/internal/indus/ast"
	"repro/internal/indus/token"
	"repro/internal/indus/types"
	"repro/internal/pipeline"
)

var binOps = map[token.Kind]pipeline.OpCode{
	token.PLUS: pipeline.OpAdd, token.MINUS: pipeline.OpSub,
	token.STAR: pipeline.OpMul, token.SLASH: pipeline.OpDiv, token.PERCENT: pipeline.OpMod,
	token.AMP: pipeline.OpBAnd, token.PIPE: pipeline.OpBOr, token.CARET: pipeline.OpBXor,
	token.SHL: pipeline.OpShl, token.SHR: pipeline.OpShr,
	token.EQ: pipeline.OpEq, token.NEQ: pipeline.OpNe,
	token.LT: pipeline.OpLt, token.LEQ: pipeline.OpLe,
	token.GT: pipeline.OpGt, token.GEQ: pipeline.OpGe,
	token.LAND: pipeline.OpLAnd, token.LOR: pipeline.OpLOr,
}

var unOps = map[token.Kind]pipeline.OpCode{
	token.NOT: pipeline.OpNot, token.TILDE: pipeline.OpBNot, token.MINUS: pipeline.OpNeg,
}

// compileExpr lowers an Indus expression to a pipeline expression plus
// the prelude ops (table applies, register reads) that must run before
// the statement containing it. Preludes are side-effect-free, so hoisting
// them out of short-circuit positions is sound.
func (c *compilerState) compileExpr(e ast.Expr) ([]pipeline.Op, pipeline.Expr, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		w := 32
		if t, ok := c.info.TypeOf(e).(ast.BitType); ok {
			w = t.Width
		}
		return nil, pipeline.C(w, e.Value), nil

	case *ast.BoolLit:
		v := uint64(0)
		if e.Value {
			v = 1
		}
		return nil, pipeline.C(1, v), nil

	case *ast.Ident:
		return c.compileIdent(e)

	case *ast.Unary:
		prelude, x, err := c.compileExpr(e.X)
		if err != nil {
			return nil, nil, err
		}
		return prelude, pipeline.Unary{Op: unOps[e.Op], X: x}, nil

	case *ast.Binary:
		if e.Op == token.IN {
			return c.compileIn(e)
		}
		px, x, err := c.compileExpr(e.X)
		if err != nil {
			return nil, nil, err
		}
		py, y, err := c.compileExpr(e.Y)
		if err != nil {
			return nil, nil, err
		}
		return append(px, py...), pipeline.Bin{Op: binOps[e.Op], X: x, Y: y}, nil

	case *ast.Index:
		return c.compileIndex(e)

	case *ast.Call:
		return c.compileCall(e)

	case *ast.Method:
		if e.Name == "length" {
			base, err := c.arraySym(e.Recv)
			if err != nil {
				return nil, nil, err
			}
			return nil, pipeline.Field{Ref: pipeline.ArrayCount(base.base), Width: 8}, nil
		}
		return nil, nil, fmt.Errorf("%s: compiler: method %q in expression position", e.Pos, e.Name)

	case *ast.Tuple:
		return nil, nil, fmt.Errorf("%s: compiler: tuple outside dict key or report", e.Pos)
	}
	return nil, nil, fmt.Errorf("%s: compiler: unknown expression %T", e.Position(), e)
}

func (c *compilerState) compileIdent(e *ast.Ident) ([]pipeline.Op, pipeline.Expr, error) {
	if f, ok := c.loopVars[e.Name]; ok {
		return nil, f, nil
	}
	if t, isBuiltin := ast.BuiltinType(e.Name); isBuiltin {
		return nil, c.builtinExpr(e.Name, t), nil
	}
	sym := c.syms[e.Name]
	if sym == nil {
		return nil, nil, fmt.Errorf("%s: compiler: unknown variable %q", e.Pos, e.Name)
	}
	d := sym.decl
	switch d.Kind {
	case ast.KindTele:
		if _, isArr := d.Type.(ast.ArrayType); isArr {
			return nil, nil, fmt.Errorf("%s: compiler: array %q used as a scalar", e.Pos, e.Name)
		}
		return nil, pipeline.Field{Ref: pipeline.FieldRef(sym.base), Width: widthOf(d.Type)}, nil

	case ast.KindHeader:
		return nil, pipeline.Field{Ref: pipeline.FieldRef(sym.base), Width: widthOf(d.Type)}, nil

	case ast.KindSensor:
		if _, isArr := d.Type.(ast.ArrayType); isArr {
			return nil, nil, fmt.Errorf("%s: compiler: sensor array %q used as a scalar", e.Pos, e.Name)
		}
		w := widthOf(d.Type)
		tmp := c.newTemp(w)
		return []pipeline.Op{
			pipeline.RegReadOp{Reg: sym.register, Index: pipeline.C(32, 0), Dst: tmp.Ref, Width: w},
		}, tmp, nil

	case ast.KindControl:
		switch d.Type.(type) {
		case ast.DictType, ast.SetType:
			return nil, nil, fmt.Errorf("%s: compiler: control %s %q must be indexed", e.Pos, d.Type, e.Name)
		}
		// Scalar control: the block prologue applied its table.
		return nil, pipeline.Field{Ref: pipeline.FieldRef("ctrl." + d.Name), Width: widthOf(d.Type)}, nil
	}
	return nil, nil, fmt.Errorf("%s: compiler: unhandled variable kind", e.Pos)
}

func (c *compilerState) builtinExpr(name string, t ast.Type) pipeline.Expr {
	switch name {
	case ast.BuiltinLastHop:
		return pipeline.Field{Ref: pipeline.FieldLastHop, Width: 1}
	case ast.BuiltinFirstHop:
		return pipeline.Field{Ref: pipeline.FieldFirst, Width: 1}
	case ast.BuiltinPacketLength:
		return pipeline.Field{Ref: pipeline.FieldPktLen, Width: 32}
	case ast.BuiltinSwitchID:
		return pipeline.Field{Ref: pipeline.FieldSwitch, Width: 32}
	case ast.BuiltinHopCount:
		f := pipeline.Field{Ref: pipeline.FieldHops, Width: 8}
		if c.block == types.BlockInit {
			// The init block runs before the telemetry block's hop-count
			// increment, so hop_count reads one ahead of the carried value.
			return pipeline.Bin{Op: pipeline.OpAdd, X: f, Y: pipeline.C(8, 1)}
		}
		return f
	}
	panic("compiler: unknown builtin " + name)
}

// arraySym resolves an expression that must denote a tele array variable.
func (c *compilerState) arraySym(e ast.Expr) (*symbol, error) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, fmt.Errorf("%s: compiler: expected an array variable", e.Position())
	}
	sym := c.syms[id.Name]
	if sym == nil || sym.decl.Kind != ast.KindTele {
		return nil, fmt.Errorf("%s: compiler: %q is not a tele array", e.Position(), id.Name)
	}
	if _, ok := sym.decl.Type.(ast.ArrayType); !ok {
		return nil, fmt.Errorf("%s: compiler: %q is not an array", e.Position(), id.Name)
	}
	return sym, nil
}

// arraySlotRead builds the expression reading slot `index` of a tele
// array: a direct field for constant indexes, a mux chain otherwise
// (P4-16 conditional expressions over the unrolled slots).
func (c *compilerState) arraySlotRead(base string, at ast.ArrayType, index ast.Expr, idxX pipeline.Expr) pipeline.Expr {
	elemW := widthOf(at.Elem)
	if lit, ok := index.(*ast.IntLit); ok && int(lit.Value) < at.Len {
		return pipeline.Field{Ref: pipeline.ArraySlot(base, int(lit.Value)), Width: elemW}
	}
	// mux(idx==0, slot0, mux(idx==1, slot1, ... 0))
	var expr pipeline.Expr = pipeline.C(elemW, 0)
	for i := at.Len - 1; i >= 0; i-- {
		expr = pipeline.Mux{
			Cond: pipeline.Bin{Op: pipeline.OpEq, X: idxX, Y: pipeline.C(32, uint64(i))},
			X:    pipeline.Field{Ref: pipeline.ArraySlot(base, i), Width: elemW},
			Y:    expr,
		}
	}
	return expr
}

func (c *compilerState) compileIndex(e *ast.Index) ([]pipeline.Op, pipeline.Expr, error) {
	// Dict lookup?
	if id, ok := e.X.(*ast.Ident); ok {
		if sym := c.syms[id.Name]; sym != nil && sym.decl.Kind == ast.KindControl {
			dt, ok := sym.decl.Type.(ast.DictType)
			if !ok {
				return nil, nil, fmt.Errorf("%s: compiler: control %q is not a dict", e.Pos, id.Name)
			}
			prelude, keys, err := c.flattenKey(e.Idx)
			if err != nil {
				return nil, nil, err
			}
			// Apply the table right before the statement (§4.1), then
			// copy the result into a fresh temp so several lookups of the
			// same dict can coexist in one statement.
			w := widthOf(dt.Val)
			tmp := c.newTemp(w)
			prelude = append(prelude,
				pipeline.ApplyOp{Table: sym.table, Keys: keys},
				pipeline.AssignOp{Dst: tmp.Ref, DstWidth: w, Src: pipeline.Field{Ref: pipeline.FieldRef("ctrl." + sym.decl.Name), Width: w}},
			)
			return prelude, tmp, nil
		}
	}

	// Tele array read.
	sym, err := c.arraySym(e.X)
	if err != nil {
		return nil, nil, err
	}
	at := sym.decl.Type.(ast.ArrayType)
	prelude, idxX, err := c.compileExpr(e.Idx)
	if err != nil {
		return nil, nil, err
	}
	return prelude, c.arraySlotRead(sym.base, at, e.Idx, idxX), nil
}

// flattenKey lowers a dict key (scalar or tuple) into one expression per
// key column.
func (c *compilerState) flattenKey(e ast.Expr) ([]pipeline.Op, []pipeline.Expr, error) {
	var ops []pipeline.Op
	var keys []pipeline.Expr
	elems := []ast.Expr{e}
	if tup, ok := e.(*ast.Tuple); ok {
		elems = tup.Elems
	}
	for _, el := range elems {
		prelude, x, err := c.compileExpr(el)
		if err != nil {
			return nil, nil, err
		}
		ops = append(ops, prelude...)
		keys = append(keys, x)
	}
	return ops, keys, nil
}

// compileIn expands the membership operator: a table apply for control
// sets, a disjunction over valid slots for tele arrays.
func (c *compilerState) compileIn(e *ast.Binary) ([]pipeline.Op, pipeline.Expr, error) {
	if id, ok := e.Y.(*ast.Ident); ok {
		if sym := c.syms[id.Name]; sym != nil && sym.decl.Kind == ast.KindControl {
			if _, isSet := sym.decl.Type.(ast.SetType); isSet {
				prelude, keys, err := c.flattenKey(e.X)
				if err != nil {
					return nil, nil, err
				}
				prelude = append(prelude, pipeline.ApplyOp{Table: sym.table, Keys: keys})
				hit := pipeline.Field{Ref: pipeline.FieldRef(sym.table + ".$hit"), Width: 1}
				tmp := c.newTemp(1)
				prelude = append(prelude, pipeline.AssignOp{Dst: tmp.Ref, DstWidth: 1, Src: hit})
				return prelude, tmp, nil
			}
		}
	}

	sym, err := c.arraySym(e.Y)
	if err != nil {
		return nil, nil, err
	}
	at := sym.decl.Type.(ast.ArrayType)
	prelude, x, err := c.compileExpr(e.X)
	if err != nil {
		return nil, nil, err
	}
	// Evaluate the needle once.
	elemW := widthOf(at.Elem)
	needle := c.newTemp(elemW)
	prelude = append(prelude, pipeline.AssignOp{Dst: needle.Ref, DstWidth: elemW, Src: x})

	count := pipeline.Field{Ref: pipeline.ArrayCount(sym.base), Width: 8}
	var or pipeline.Expr = pipeline.C(1, 0)
	for i := 0; i < at.Len; i++ {
		term := pipeline.Bin{
			Op: pipeline.OpLAnd,
			X:  pipeline.Bin{Op: pipeline.OpLt, X: pipeline.C(8, uint64(i)), Y: count},
			Y: pipeline.Bin{Op: pipeline.OpEq,
				X: pipeline.Field{Ref: pipeline.ArraySlot(sym.base, i), Width: elemW},
				Y: needle},
		}
		if i == 0 {
			or = term
		} else {
			or = pipeline.Bin{Op: pipeline.OpLOr, X: or, Y: term}
		}
	}
	return prelude, or, nil
}

func (c *compilerState) compileCall(e *ast.Call) ([]pipeline.Op, pipeline.Expr, error) {
	var ops []pipeline.Op
	args := make([]pipeline.Expr, len(e.Args))
	for i, a := range e.Args {
		prelude, x, err := c.compileExpr(a)
		if err != nil {
			return nil, nil, err
		}
		ops = append(ops, prelude...)
		args[i] = x
	}
	switch e.Name {
	case "abs":
		return ops, pipeline.Unary{Op: pipeline.OpAbs, X: args[0]}, nil
	case "max":
		return ops, pipeline.Bin{Op: pipeline.OpMax, X: args[0], Y: args[1]}, nil
	case "min":
		return ops, pipeline.Bin{Op: pipeline.OpMin, X: args[0], Y: args[1]}, nil
	}
	return nil, nil, fmt.Errorf("%s: compiler: unknown function %q", e.Pos, e.Name)
}
