package compiler

import (
	"fmt"
	"sync"

	"repro/internal/pipeline"
)

// Runtime executes a compiled program hop by hop, the way the linked
// switches do: init at the first hop's ingress, telemetry at every hop's
// egress, checker at the last hop's egress (§4.2). The telemetry blob it
// threads between hops is exactly the Hydra header payload on the wire.
type Runtime struct {
	Prog *pipeline.Program
	// CheckEveryHop enables the §4.3 per-hop checking variant: the
	// checker block runs at every hop instead of only the last one, so
	// violations are caught (and packets can be dropped) mid-network.
	CheckEveryHop bool

	// needed caches the header-binding paths the program actually
	// reads, so RunBlocks copies only those from the (much larger)
	// per-hop binding environment.
	neededOnce sync.Once
	needed     []pipeline.FieldRef
	phvSize    int

	// phvPool recycles PHV maps between hops; a PHV never outlives the
	// RunBlocks call that uses it (results copy all values out).
	phvPool sync.Pool
}

// neededHeaders returns the binding paths the compiled program reads.
func (r *Runtime) neededHeaders() []pipeline.FieldRef {
	r.neededOnce.Do(func() {
		for _, path := range r.Prog.HeaderBindings {
			r.needed = append(r.needed, pipeline.FieldRef(path))
		}
		// PHV capacity: builtins + bindings + telemetry fields (arrays
		// count slots) + a slack for temporaries and table outputs.
		n := 8 + len(r.needed)
		for _, f := range r.Prog.Tele {
			if f.IsArray {
				n += f.Cap + 1
			} else {
				n++
			}
		}
		r.phvSize = n + 8
	})
	return r.needed
}

// HopEnv is the per-hop execution environment.
type HopEnv struct {
	// State is this switch's instantiation of the program's tables and
	// registers.
	State *pipeline.State
	// SwitchID is the switch identifier exposed as the switch_id builtin.
	SwitchID uint32
	// Headers binds forwarding-program fields (keyed by annotation path,
	// e.g. "hdr.ipv4.src_addr") into the checker's PHV.
	Headers map[string]pipeline.Value
	// PacketLen is the wire length exposed as packet_length.
	PacketLen uint32
}

// HopResult is the outcome of running the program at one hop.
type HopResult struct {
	// Blob is the updated telemetry payload to carry to the next hop.
	Blob []byte
	// Reject is true when the checker raised reject at this hop.
	Reject bool
	// Reports are the digests raised at this hop.
	Reports []pipeline.Report
	// TableApplies and OpsExecuted feed the performance model.
	TableApplies int
	OpsExecuted  int
}

// BlockSet selects which blocks RunBlocks executes. The compiler's
// linking rules (§4.2) place Init at the first hop's ingress pipeline —
// before the forwarding tables run — and Telemetry/Checker in the
// egress pipeline, so a switch harness calls RunBlocks twice per hop
// with different header bindings.
type BlockSet struct {
	Init      bool
	Telemetry bool
	Checker   bool
}

// RunBlocks executes the selected blocks against the telemetry blob and
// hop environment and returns the updated blob plus any verdicts.
func (r *Runtime) RunBlocks(blob []byte, env HopEnv, bs BlockSet, first, last bool) (HopResult, error) {
	needed := r.neededHeaders()
	phv, _ := r.phvPool.Get().(pipeline.PHV)
	if phv == nil {
		phv = make(pipeline.PHV, r.phvSize)
	}
	defer func() {
		clear(phv)
		r.phvPool.Put(phv)
	}()
	if err := r.Prog.DecodeTele(blob, phv); err != nil {
		return HopResult{}, err
	}
	phv.Set(pipeline.FieldSwitch, pipeline.B(32, uint64(env.SwitchID)))
	phv.Set(pipeline.FieldPktLen, pipeline.B(32, uint64(env.PacketLen)))
	phv.Set(pipeline.FieldLastHop, pipeline.BoolV(last))
	phv.Set(pipeline.FieldFirst, pipeline.BoolV(first))
	for _, path := range needed {
		if v, ok := env.Headers[string(path)]; ok {
			phv.Set(path, v)
		}
	}

	ctx := &pipeline.ExecContext{PHV: phv, State: env.State}
	if bs.Init {
		if err := ctx.Exec(r.Prog.Init); err != nil {
			return HopResult{}, fmt.Errorf("init block: %w", err)
		}
	}
	if bs.Telemetry {
		if err := ctx.Exec(r.Prog.Telemetry); err != nil {
			return HopResult{}, fmt.Errorf("telemetry block: %w", err)
		}
	}
	if bs.Checker {
		if err := ctx.Exec(r.Prog.Checker); err != nil {
			return HopResult{}, fmt.Errorf("checker block: %w", err)
		}
	}
	return HopResult{
		Blob:         r.Prog.EncodeTele(phv),
		Reject:       phv.Get(pipeline.FieldReject).Bool(),
		Reports:      ctx.Reports,
		TableApplies: ctx.TableApplies,
		OpsExecuted:  ctx.OpsExecuted,
	}, nil
}

// RunHop executes the blocks scheduled at this hop with a single header
// environment: init (first hop only), telemetry, and checker (last hop,
// or every hop in CheckEveryHop mode).
func (r *Runtime) RunHop(blob []byte, env HopEnv, first, last bool) (HopResult, error) {
	return r.RunBlocks(blob, env, BlockSet{
		Init:      first,
		Telemetry: true,
		Checker:   last || r.CheckEveryHop,
	}, first, last)
}

// TraceResult is the aggregate outcome over a whole path.
type TraceResult struct {
	Reject  bool
	Reports []pipeline.Report
	// FinalBlob is the telemetry payload as stripped at the last hop.
	FinalBlob []byte
}

// RunTrace executes a full path: envs[i] is hop i. It mirrors
// eval.Machine.RunTrace and is used for differential testing.
func (r *Runtime) RunTrace(envs []HopEnv) (TraceResult, error) {
	if len(envs) == 0 {
		return TraceResult{}, fmt.Errorf("compiler: empty trace")
	}
	var res TraceResult
	var blob []byte
	for i, env := range envs {
		hr, err := r.RunHop(blob, env, i == 0, i == len(envs)-1)
		if err != nil {
			return TraceResult{}, fmt.Errorf("hop %d (switch %d): %w", i, env.SwitchID, err)
		}
		blob = hr.Blob
		res.Reports = append(res.Reports, hr.Reports...)
		if hr.Reject {
			res.Reject = true
		}
	}
	res.FinalBlob = blob
	return res, nil
}
