package compiler

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/pipeline"
)

// Runtime executes a compiled program hop by hop, the way the linked
// switches do: init at the first hop's ingress, telemetry at every hop's
// egress, checker at the last hop's egress (§4.2). The telemetry blob it
// threads between hops is exactly the Hydra header payload on the wire.
//
// By default the Runtime executes through the slot-resolved linked form
// of the program (pipeline.Link): a flat PHV vector, closure-compiled
// ops, and packed table keys — no string hashing or per-packet maps.
// NoLink forces the original map-based interpreter, kept as the
// reference semantics for differential testing.
type Runtime struct {
	Prog *pipeline.Program
	// CheckEveryHop enables the §4.3 per-hop checking variant: the
	// checker block runs at every hop instead of only the last one, so
	// violations are caught (and packets can be dropped) mid-network.
	CheckEveryHop bool
	// NoLink disables the linked executor; set it before the first Run*
	// call. Used by the conformance suite to pin the reference path.
	NoLink bool
	// UseVM routes RunBlocks through the bytecode VM backend instead of
	// the linked closures; set it before the first Run* call. RunTraceVM
	// is available regardless.
	UseVM bool

	linkOnce sync.Once
	linked   *pipeline.Linked

	vmOnce sync.Once
	vm     *bytecode.Prog

	// bindings caches the sorted header-binding paths the program reads;
	// both executors bind headers in this order, and HopEnv.SlotHeaders
	// is indexed by it.
	bindOnce sync.Once
	bindings []string
	phvSize  int

	// phvPool recycles PHV maps between hops (map path only); a PHV
	// never outlives the RunBlocks call that uses it.
	phvPool sync.Pool
}

// Bindings returns the header-binding paths the compiled program reads,
// sorted and deduplicated. HopEnv.SlotHeaders[i] corresponds to
// Bindings()[i].
func (r *Runtime) Bindings() []string {
	r.bindOnce.Do(func() {
		seen := make(map[string]bool, len(r.Prog.HeaderBindings))
		for _, path := range r.Prog.HeaderBindings {
			if !seen[path] {
				seen[path] = true
				r.bindings = append(r.bindings, path)
			}
		}
		sort.Strings(r.bindings)
		// PHV capacity: builtins + bindings + telemetry fields (arrays
		// count slots) + a slack for temporaries and table outputs.
		n := 8 + len(r.bindings)
		for _, f := range r.Prog.Tele {
			if f.IsArray {
				n += f.Cap + 1
			} else {
				n++
			}
		}
		r.phvSize = n + 8
	})
	return r.bindings
}

// Linked returns the slot-resolved executable form of the program,
// linking it on first use, or nil when NoLink is set or the program
// fails to link (it then runs on the map interpreter, which surfaces
// the same error at execution time).
func (r *Runtime) Linked() *pipeline.Linked {
	if r.NoLink {
		return nil
	}
	r.linkOnce.Do(func() {
		if lk, err := pipeline.Link(r.Prog); err == nil {
			r.linked = lk
		}
	})
	return r.linked
}

// VM returns the flat bytecode form of the program, compiling it on
// first use, or nil when NoLink is set or compilation fails (execution
// then falls back to the linked closures or the map interpreter).
func (r *Runtime) VM() *bytecode.Prog {
	if r.NoLink {
		return nil
	}
	r.vmOnce.Do(func() {
		if vp, err := bytecode.Compile(r.Prog); err == nil {
			r.vm = vp
		}
	})
	return r.vm
}

// HopEnv is the per-hop execution environment.
type HopEnv struct {
	// State is this switch's instantiation of the program's tables and
	// registers.
	State *pipeline.State
	// SwitchID is the switch identifier exposed as the switch_id builtin.
	SwitchID uint32
	// Headers binds forwarding-program fields (keyed by annotation path,
	// e.g. "hdr.ipv4.src_addr") into the checker's PHV.
	Headers map[string]pipeline.Value
	// SlotHeaders is the allocation-free alternative to Headers:
	// SlotHeaders[i] binds Runtime.Bindings()[i], with a zero-width
	// Value marking an absent binding. When non-nil it takes precedence
	// over Headers.
	SlotHeaders []pipeline.Value
	// PacketLen is the wire length exposed as packet_length.
	PacketLen uint32
	// ReuseBlob lets RunBlocks encode the outgoing telemetry into the
	// incoming blob's storage. The decode pass completes before the
	// encode pass starts, so in-place rewrite is safe as long as the
	// encode cannot spill past the caller's slot: pass a blob whose
	// capacity is capped at its own slot (three-index subslice) or that
	// is already exactly TeleWireBytes long. netsim's split blobs use
	// capped disjoint subslices of the frame for exactly this. Note the
	// unlinked (NoLink) reference path ignores ReuseBlob and returns a
	// fresh blob; callers that require in-place must compare storage
	// (&blob[0]) and copy back when it differs.
	ReuseBlob bool
	// EphemeralReports arms arena-backed report storage on the linked
	// path (pipeline.LCtx.BeginEphemeralReports): raising a report
	// allocates nothing, but HopResult.Reports — and the Args inside —
	// must be fully consumed before the next RunBlocks call on this
	// runtime from any goroutine. For single-threaded embedders that
	// deliver reports synchronously; retainers must leave it unset. The
	// unlinked reference path ignores it (and allocates as always).
	EphemeralReports bool
}

// HopResult is the outcome of running the program at one hop.
type HopResult struct {
	// Blob is the updated telemetry payload to carry to the next hop.
	Blob []byte
	// Reject is true when the checker raised reject at this hop.
	Reject bool
	// Reports are the digests raised at this hop.
	Reports []pipeline.Report
	// TableApplies and OpsExecuted feed the performance model.
	TableApplies int
	OpsExecuted  int
}

// BlockSet selects which blocks RunBlocks executes. The compiler's
// linking rules (§4.2) place Init at the first hop's ingress pipeline —
// before the forwarding tables run — and Telemetry/Checker in the
// egress pipeline, so a switch harness calls RunBlocks twice per hop
// with different header bindings.
type BlockSet struct {
	Init      bool
	Telemetry bool
	Checker   bool
}

// RunBlocks executes the selected blocks against the telemetry blob and
// hop environment and returns the updated blob plus any verdicts.
func (r *Runtime) RunBlocks(blob []byte, env HopEnv, bs BlockSet, first, last bool) (HopResult, error) {
	if r.UseVM {
		if vp := r.VM(); vp != nil {
			return r.runVM(vp, blob, env, bs, first, last)
		}
	}
	if lk := r.Linked(); lk != nil {
		return r.runLinked(lk, blob, env, bs, first, last)
	}
	return r.runMapped(blob, env, bs, first, last)
}

// runVM executes one hop through the bytecode backend, with the same
// per-hop blob roundtrip contract as runLinked.
func (r *Runtime) runVM(vp *bytecode.Prog, blob []byte, env HopEnv, bs BlockSet, first, last bool) (HopResult, error) {
	c := vp.AcquireCtx()
	c.State = env.State
	if env.EphemeralReports {
		c.BeginEphemeralReports()
	}
	if err := vp.DecodeTele(blob, c.PHV); err != nil {
		vp.ReleaseCtx(c)
		return HopResult{}, err
	}
	vp.SetHopMeta(c.PHV, env.SwitchID, int(env.PacketLen), first, last)
	if env.SlotHeaders != nil {
		vp.BindHeaderSlots(c.PHV, env.SlotHeaders)
	} else if env.Headers != nil {
		vp.BindHeaderMap(c.PHV, env.Headers)
	}

	if bs.Init {
		vp.ExecInit(c)
	}
	if bs.Telemetry {
		vp.ExecTelemetry(c)
	}
	if bs.Checker {
		vp.ExecChecker(c)
	}

	var dst []byte
	if env.ReuseBlob {
		dst = blob[:0]
	}
	res := HopResult{
		Blob:         vp.EncodeTele(dst, c.PHV),
		Reject:       vp.Reject(c),
		Reports:      c.Reports,
		TableApplies: c.TableApplies,
		OpsExecuted:  c.OpsExecuted,
	}
	vp.ReleaseCtx(c)
	return res, nil
}

// runLinked is the hot path: pooled flat PHV, closure ops, in-place
// telemetry encode when the caller allows it.
func (r *Runtime) runLinked(lk *pipeline.Linked, blob []byte, env HopEnv, bs BlockSet, first, last bool) (HopResult, error) {
	c := lk.AcquireCtx()
	c.State = env.State
	if env.EphemeralReports {
		c.BeginEphemeralReports()
	}
	if err := lk.DecodeTele(blob, c.PHV); err != nil {
		lk.ReleaseCtx(c)
		return HopResult{}, err
	}
	c.PHV[lk.SlotSwitch] = pipeline.B(32, uint64(env.SwitchID))
	c.PHV[lk.SlotPktLen] = pipeline.B(32, uint64(env.PacketLen))
	c.PHV[lk.SlotLast] = pipeline.BoolV(last)
	c.PHV[lk.SlotFirst] = pipeline.BoolV(first)
	if env.SlotHeaders != nil {
		lk.BindHeaderSlots(c.PHV, env.SlotHeaders)
	} else if env.Headers != nil {
		lk.BindHeaderMap(c.PHV, env.Headers)
	}

	if bs.Init {
		lk.ExecInit(c)
	}
	if bs.Telemetry {
		lk.ExecTelemetry(c)
	}
	if bs.Checker {
		lk.ExecChecker(c)
	}

	// Decode fully precedes encode, so reusing the incoming blob's
	// storage is safe within one call — but only when the caller owns it.
	var dst []byte
	if env.ReuseBlob {
		dst = blob[:0]
	}
	res := HopResult{
		Blob:         lk.EncodeTele(dst, c.PHV),
		Reject:       c.PHV[lk.SlotReject].Bool(),
		Reports:      c.Reports,
		TableApplies: c.TableApplies,
		OpsExecuted:  c.OpsExecuted,
	}
	lk.ReleaseCtx(c)
	return res, nil
}

// runMapped is the reference interpreter over the map PHV.
func (r *Runtime) runMapped(blob []byte, env HopEnv, bs BlockSet, first, last bool) (HopResult, error) {
	bindings := r.Bindings()
	phv, _ := r.phvPool.Get().(pipeline.PHV)
	if phv == nil {
		phv = make(pipeline.PHV, r.phvSize)
	}
	defer func() {
		clear(phv)
		r.phvPool.Put(phv)
	}()
	if err := r.Prog.DecodeTele(blob, phv); err != nil {
		return HopResult{}, err
	}
	phv.Set(pipeline.FieldSwitch, pipeline.B(32, uint64(env.SwitchID)))
	phv.Set(pipeline.FieldPktLen, pipeline.B(32, uint64(env.PacketLen)))
	phv.Set(pipeline.FieldLastHop, pipeline.BoolV(last))
	phv.Set(pipeline.FieldFirst, pipeline.BoolV(first))
	if env.SlotHeaders != nil {
		for i, path := range bindings {
			if i < len(env.SlotHeaders) && env.SlotHeaders[i].W != 0 {
				phv.Set(pipeline.FieldRef(path), env.SlotHeaders[i])
			}
		}
	} else if env.Headers != nil {
		for _, path := range bindings {
			if v, ok := env.Headers[path]; ok {
				phv.Set(pipeline.FieldRef(path), v)
			}
		}
	}

	ctx := &pipeline.ExecContext{PHV: phv, State: env.State}
	if bs.Init {
		if err := ctx.Exec(r.Prog.Init); err != nil {
			return HopResult{}, fmt.Errorf("init block: %w", err)
		}
	}
	if bs.Telemetry {
		if err := ctx.Exec(r.Prog.Telemetry); err != nil {
			return HopResult{}, fmt.Errorf("telemetry block: %w", err)
		}
	}
	if bs.Checker {
		if err := ctx.Exec(r.Prog.Checker); err != nil {
			return HopResult{}, fmt.Errorf("checker block: %w", err)
		}
	}
	return HopResult{
		Blob:         r.Prog.EncodeTele(phv),
		Reject:       phv.Get(pipeline.FieldReject).Bool(),
		Reports:      ctx.Reports,
		TableApplies: ctx.TableApplies,
		OpsExecuted:  ctx.OpsExecuted,
	}, nil
}

// RunHop executes the blocks scheduled at this hop with a single header
// environment: init (first hop only), telemetry, and checker (last hop,
// or every hop in CheckEveryHop mode).
func (r *Runtime) RunHop(blob []byte, env HopEnv, first, last bool) (HopResult, error) {
	return r.RunBlocks(blob, env, BlockSet{
		Init:      first,
		Telemetry: true,
		Checker:   last || r.CheckEveryHop,
	}, first, last)
}

// TraceResult is the aggregate outcome over a whole path.
type TraceResult struct {
	Reject  bool
	Reports []pipeline.Report
	// FinalBlob is the telemetry payload as stripped at the last hop.
	FinalBlob []byte
}

// RunTrace executes a full path: envs[i] is hop i. It mirrors
// eval.Machine.RunTrace and is used for differential testing.
func (r *Runtime) RunTrace(envs []HopEnv) (TraceResult, error) {
	if len(envs) == 0 {
		return TraceResult{}, fmt.Errorf("compiler: empty trace")
	}
	var res TraceResult
	var blob []byte
	for i, env := range envs {
		hr, err := r.RunHop(blob, env, i == 0, i == len(envs)-1)
		if err != nil {
			return TraceResult{}, fmt.Errorf("hop %d (switch %d): %w", i, env.SwitchID, err)
		}
		blob = hr.Blob
		res.Reports = append(res.Reports, hr.Reports...)
		if hr.Reject {
			res.Reject = true
		}
	}
	res.FinalBlob = blob
	return res, nil
}

// RunTraceVM executes a full path through the bytecode backend in
// resident-PHV mode: telemetry stays in the slot vector between hops
// and the wire codec runs only once, for the final blob. This is the
// engine's batched execution shape; difftest replays every trace
// through it to pin byte-equivalence with the per-hop roundtrip.
func (r *Runtime) RunTraceVM(envs []HopEnv) (TraceResult, error) {
	vp := r.VM()
	if vp == nil {
		return TraceResult{}, fmt.Errorf("compiler: bytecode backend unavailable")
	}
	if len(envs) == 0 {
		return TraceResult{}, fmt.Errorf("compiler: empty trace")
	}
	c := vp.AcquireCtx()
	var res TraceResult
	for i, env := range envs {
		first, last := i == 0, i == len(envs)-1
		vp.BeginHop(c, env.State, env.SwitchID, int(env.PacketLen), first, last)
		if env.SlotHeaders != nil {
			vp.BindHeaderSlots(c.PHV, env.SlotHeaders)
		} else if env.Headers != nil {
			vp.BindHeaderMap(c.PHV, env.Headers)
		}
		if first {
			vp.ExecInit(c)
		}
		vp.ExecTelemetry(c)
		if last || r.CheckEveryHop {
			vp.ExecChecker(c)
		}
		if vp.Reject(c) {
			res.Reject = true
		}
	}
	res.Reports = c.Reports
	res.FinalBlob = vp.EncodeTele(nil, c.PHV)
	vp.ReleaseCtx(c)
	return res, nil
}
