package compiler

import (
	"fmt"

	"repro/internal/indus/ast"
	"repro/internal/indus/token"
	"repro/internal/pipeline"
)

func (c *compilerState) compileStmts(stmts []ast.Stmt) ([]pipeline.Op, error) {
	var ops []pipeline.Op
	for _, s := range stmts {
		sOps, err := c.compileStmt(s)
		if err != nil {
			return nil, err
		}
		ops = append(ops, sOps...)
	}
	return ops, nil
}

func (c *compilerState) compileStmt(s ast.Stmt) ([]pipeline.Op, error) {
	switch s := s.(type) {
	case *ast.Block:
		return c.compileStmts(s.Stmts)

	case *ast.Pass:
		return nil, nil

	case *ast.Reject:
		return []pipeline.Op{pipeline.AssignOp{
			Dst: pipeline.FieldReject, DstWidth: 1, Src: pipeline.C(1, 1),
		}}, nil

	case *ast.Report:
		var ops []pipeline.Op
		var args []pipeline.Expr
		for _, a := range s.Args {
			// Tuples flatten into the digest.
			if tup, ok := a.(*ast.Tuple); ok {
				for _, el := range tup.Elems {
					prelude, ex, err := c.compileExpr(el)
					if err != nil {
						return nil, err
					}
					ops = append(ops, prelude...)
					args = append(args, ex)
				}
				continue
			}
			prelude, ex, err := c.compileExpr(a)
			if err != nil {
				return nil, err
			}
			ops = append(ops, prelude...)
			args = append(args, ex)
		}
		return append(ops, pipeline.ReportOp{Args: args}), nil

	case *ast.Assign:
		return c.compileAssign(s)

	case *ast.If:
		prelude, cond, err := c.compileExpr(s.Cond)
		if err != nil {
			return nil, err
		}
		thenOps, err := c.compileStmts(s.Then.Stmts)
		if err != nil {
			return nil, err
		}
		var elseOps []pipeline.Op
		if s.Else != nil {
			elseOps, err = c.compileStmt(s.Else)
			if err != nil {
				return nil, err
			}
		}
		return append(prelude, pipeline.IfOp{Cond: cond, Then: thenOps, Else: elseOps}), nil

	case *ast.For:
		return c.compileFor(s)

	case *ast.ExprStmt:
		m := s.X.(*ast.Method) // parser guarantees push
		return c.compilePush(m)

	default:
		return nil, fmt.Errorf("%s: compiler: unknown statement %T", s.Position(), s)
	}
}

func (c *compilerState) compileAssign(s *ast.Assign) ([]pipeline.Op, error) {
	switch lhs := s.LHS.(type) {
	case *ast.Ident:
		sym := c.syms[lhs.Name]
		if sym == nil {
			return nil, fmt.Errorf("%s: compiler: assignment to unknown variable %q", s.Pos, lhs.Name)
		}
		return c.compileAssignTo(sym, nil, s.Op, s.RHS)

	case *ast.Index:
		base, ok := lhs.X.(*ast.Ident)
		if !ok {
			return nil, fmt.Errorf("%s: compiler: unsupported assignment target", s.Pos)
		}
		sym := c.syms[base.Name]
		if sym == nil {
			return nil, fmt.Errorf("%s: compiler: assignment to unknown variable %q", s.Pos, base.Name)
		}
		return c.compileAssignTo(sym, lhs.Idx, s.Op, s.RHS)
	}
	return nil, fmt.Errorf("%s: compiler: invalid assignment target", s.Pos)
}

// compileAssignTo emits the ops for an assignment (plain or compound) to
// sym, optionally through an index expression.
func (c *compilerState) compileAssignTo(sym *symbol, index ast.Expr, op token.Kind, rhs ast.Expr) ([]pipeline.Op, error) {
	prelude, rhsX, err := c.compileExpr(rhs)
	if err != nil {
		return nil, err
	}

	d := sym.decl
	switch d.Kind {
	case ast.KindTele:
		switch t := d.Type.(type) {
		case ast.ArrayType:
			if index == nil {
				return nil, fmt.Errorf("compiler: whole-array assignment to %q is not supported", d.Name)
			}
			idxPrelude, idxX, err := c.compileExpr(index)
			if err != nil {
				return nil, err
			}
			prelude = append(prelude, idxPrelude...)
			elemW := widthOf(t.Elem)
			if op != token.ASSIGN {
				cur := c.arraySlotRead(sym.base, t, index, idxX)
				rhsX = pipeline.Bin{Op: compoundOp(op), X: cur, Y: rhsX}
			}
			return append(prelude, pipeline.SetSlotOp{
				Base: sym.base, ElemWidth: elemW, Cap: t.Len, Index: idxX, Src: rhsX,
			}), nil

		default:
			w := widthOf(d.Type)
			dst := pipeline.FieldRef(sym.base)
			if op != token.ASSIGN {
				rhsX = pipeline.Bin{Op: compoundOp(op), X: pipeline.Field{Ref: dst, Width: w}, Y: rhsX}
			}
			return append(prelude, pipeline.AssignOp{Dst: dst, DstWidth: w, Src: rhsX}), nil
		}

	case ast.KindSensor:
		var idxX pipeline.Expr = pipeline.C(32, 0)
		var elemW int
		switch t := d.Type.(type) {
		case ast.ArrayType:
			if index == nil {
				return nil, fmt.Errorf("compiler: whole-array assignment to sensor %q is not supported", d.Name)
			}
			var idxPrelude []pipeline.Op
			idxPrelude, idxX, err = c.compileExpr(index)
			if err != nil {
				return nil, err
			}
			prelude = append(prelude, idxPrelude...)
			elemW = widthOf(t.Elem)
		default:
			elemW = widthOf(d.Type)
		}
		if op != token.ASSIGN {
			tmp := c.newTemp(elemW)
			prelude = append(prelude, pipeline.RegReadOp{Reg: sym.register, Index: idxX, Dst: tmp.Ref, Width: elemW})
			rhsX = pipeline.Bin{Op: compoundOp(op), X: tmp, Y: rhsX}
		}
		return append(prelude, pipeline.RegWriteOp{Reg: sym.register, Index: idxX, Src: rhsX}), nil
	}
	return nil, fmt.Errorf("compiler: assignment to read-only %s variable %q", d.Kind, d.Name)
}

func compoundOp(op token.Kind) pipeline.OpCode {
	if op == token.PLUSASSIGN {
		return pipeline.OpAdd
	}
	return pipeline.OpSub
}

// compileFor fully unrolls a (possibly multi-variable) for loop over the
// static array capacity; each iteration is guarded by validity tests on
// the arrays' counts (§4.1: "the loop body is executed for each list
// index that is valid").
func (c *compilerState) compileFor(s *ast.For) ([]pipeline.Op, error) {
	type seqInfo struct {
		base  string
		elemW int
		cap   int
	}
	seqs := make([]seqInfo, len(s.Seqs))
	for i, q := range s.Seqs {
		id, ok := q.(*ast.Ident)
		if !ok {
			return nil, fmt.Errorf("%s: compiler: for sequences must be array variables", s.Pos)
		}
		sym := c.syms[id.Name]
		if sym == nil || sym.decl.Kind != ast.KindTele {
			return nil, fmt.Errorf("%s: compiler: for sequence %q must be a tele array", s.Pos, id.Name)
		}
		at, ok := sym.decl.Type.(ast.ArrayType)
		if !ok {
			return nil, fmt.Errorf("%s: compiler: for sequence %q is not an array", s.Pos, id.Name)
		}
		seqs[i] = seqInfo{base: sym.base, elemW: widthOf(at.Elem), cap: at.Len}
	}

	// Bind loop variables to fresh temps for the body compilation.
	temps := make([]pipeline.Field, len(s.Vars))
	saved := make(map[string]pipeline.Field)
	for i, name := range s.Vars {
		temps[i] = c.newTemp(seqs[i].elemW)
		if prev, ok := c.loopVars[name]; ok {
			saved[name] = prev
		}
		c.loopVars[name] = temps[i]
	}
	body, err := c.compileStmts(s.Body.Stmts)
	for _, name := range s.Vars {
		if prev, ok := saved[name]; ok {
			c.loopVars[name] = prev
		} else {
			delete(c.loopVars, name)
		}
	}
	if err != nil {
		return nil, err
	}

	n := seqs[0].cap
	for _, q := range seqs {
		if q.cap < n {
			n = q.cap
		}
	}
	var ops []pipeline.Op
	for i := 0; i < n; i++ {
		var cond pipeline.Expr
		for _, q := range seqs {
			test := pipeline.Bin{
				Op: pipeline.OpLt,
				X:  pipeline.C(8, uint64(i)),
				Y:  pipeline.Field{Ref: pipeline.ArrayCount(q.base), Width: 8},
			}
			if cond == nil {
				cond = test
			} else {
				cond = pipeline.Bin{Op: pipeline.OpLAnd, X: cond, Y: test}
			}
		}
		iter := make([]pipeline.Op, 0, len(s.Vars)+len(body))
		for j, q := range seqs {
			iter = append(iter, pipeline.AssignOp{
				Dst:      temps[j].Ref,
				DstWidth: q.elemW,
				Src:      pipeline.Field{Ref: pipeline.ArraySlot(q.base, i), Width: q.elemW},
			})
		}
		iter = append(iter, body...)
		ops = append(ops, pipeline.IfOp{Cond: cond, Then: iter})
	}
	return ops, nil
}

func (c *compilerState) compilePush(m *ast.Method) ([]pipeline.Op, error) {
	id := m.Recv.(*ast.Ident)
	sym := c.syms[id.Name]
	at := sym.decl.Type.(ast.ArrayType)
	prelude, src, err := c.compileExpr(m.Args[0])
	if err != nil {
		return nil, err
	}
	return append(prelude, pipeline.PushOp{
		Base: sym.base, ElemWidth: widthOf(at.Elem), Cap: at.Len, Src: src,
	}), nil
}
