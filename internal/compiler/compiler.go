// Package compiler translates type-checked Indus programs into pipeline
// IR (§4 of the Hydra paper). The translation strategies mirror §4.1:
//
//   - tele variables become fields of a generated telemetry header that
//     rides on the packet (arrays become header stacks with a valid
//     count);
//   - sensor variables become registers;
//   - control variables become match-action tables — dictionaries get a
//     table applied immediately before each lookup site, non-dictionary
//     control variables get a parameterless table applied at the start
//     of each block that reads them;
//   - for loops are fully unrolled over the static array capacity, each
//     iteration guarded by a validity test on the array's count;
//   - the `in` operator expands to a disjunction over valid slots (tele
//     arrays) or a table apply whose hit flag is the result (control
//     sets);
//   - reject becomes an assignment to the hydra_metadata.reject0 flag
//     (Figure 6), report becomes a digest op.
//
// The same IR is executed by internal/pipeline and pretty-printed as
// P4-16 by internal/p4, so the code that runs in the simulator is the
// code the P4 backend emits.
package compiler

import (
	"fmt"

	"repro/internal/indus/ast"
	"repro/internal/indus/token"
	"repro/internal/indus/types"
	"repro/internal/pipeline"
)

// Options tune the compilation.
type Options struct {
	// Name labels the generated program (defaults to "indus").
	Name string
	// AlignedTele selects the byte-aligned telemetry encoding (see
	// pipeline.Program.AlignedTele); default is packed.
	AlignedTele bool
}

// symbol records how one Indus variable is realized.
type symbol struct {
	decl *ast.Decl
	// base is the PHV field (scalars) or array base name.
	base string
	// table is the realizing table name for control variables.
	table string
	// register is the realizing register name for sensor variables.
	register string
}

type compilerState struct {
	info *types.Info
	prog *pipeline.Program
	syms map[string]*symbol

	// loopVars maps in-scope loop variable names to the PHV temp that
	// holds the current element during an unrolled iteration.
	loopVars map[string]pipeline.Field

	// block being compiled, for hop_count semantics.
	block types.BlockKind

	tmpCount  int
	siteCount map[string]int
}

// Compile translates a checked Indus program to pipeline IR.
func Compile(info *types.Info, opts Options) (*pipeline.Program, error) {
	name := opts.Name
	if name == "" {
		name = "indus"
	}
	c := &compilerState{
		info: info,
		prog: &pipeline.Program{
			Name:           name,
			AlignedTele:    opts.AlignedTele,
			HeaderBindings: map[string]string{},
		},
		syms:      map[string]*symbol{},
		loopVars:  map[string]pipeline.Field{},
		siteCount: map[string]int{},
	}
	if err := c.declareAll(); err != nil {
		return nil, err
	}

	var err error
	c.block = types.BlockInit
	c.prog.Init, err = c.compileInitBlock()
	if err != nil {
		return nil, err
	}
	c.block = types.BlockTelemetry
	c.prog.Telemetry, err = c.compileTelemetryBlock()
	if err != nil {
		return nil, err
	}
	c.block = types.BlockChecker
	c.prog.Checker, err = c.compileBlock(info.Prog.Checker)
	if err != nil {
		return nil, err
	}
	return c.prog, nil
}

// MustCompile compiles a checked program, panicking on error; used for
// the embedded corpus, which is covered by tests.
func MustCompile(info *types.Info, opts Options) *pipeline.Program {
	p, err := Compile(info, opts)
	if err != nil {
		panic(err)
	}
	return p
}

func widthOf(t ast.Type) int {
	switch t := t.(type) {
	case ast.BitType:
		return t.Width
	case ast.BoolType:
		return 1
	}
	panic(fmt.Sprintf("compiler: no scalar width for %s", t))
}

// scalarCols flattens a match-key type into scalar widths.
func scalarCols(t ast.Type) []int {
	if tt, ok := t.(ast.TupleType); ok {
		var ws []int
		for _, e := range tt.Elems {
			ws = append(ws, widthOf(e))
		}
		return ws
	}
	return []int{widthOf(t)}
}

func (c *compilerState) declareAll() error {
	for i := range c.info.Prog.Decls {
		d := &c.info.Prog.Decls[i]
		sym := &symbol{decl: d}
		switch d.Kind {
		case ast.KindTele:
			sym.base = "hydra_header." + d.Name
			switch t := d.Type.(type) {
			case ast.ArrayType:
				c.prog.Tele = append(c.prog.Tele, pipeline.TeleField{
					Name: sym.base, Width: widthOf(t.Elem), IsArray: true, Cap: t.Len,
				})
			default:
				c.prog.Tele = append(c.prog.Tele, pipeline.TeleField{
					Name: sym.base, Width: widthOf(t),
				})
			}

		case ast.KindSensor:
			sym.register = d.Name
			switch t := d.Type.(type) {
			case ast.ArrayType:
				c.prog.Registers = append(c.prog.Registers, pipeline.RegisterSpec{
					Name: d.Name, Width: widthOf(t.Elem), Size: t.Len,
				})
			default:
				c.prog.Registers = append(c.prog.Registers, pipeline.RegisterSpec{
					Name: d.Name, Width: widthOf(t), Size: 1,
				})
			}

		case ast.KindHeader:
			binding := d.Annot
			if binding == "" {
				binding = "hdr." + d.Name
			}
			sym.base = binding
			c.prog.HeaderBindings[d.Name] = binding

		case ast.KindControl:
			sym.table = d.Name
			out := pipeline.FieldRef("ctrl." + d.Name)
			switch t := d.Type.(type) {
			case ast.DictType:
				c.prog.Tables = append(c.prog.Tables, pipeline.TableSpec{
					Name:         d.Name,
					Keys:         keySpecs(d.Name, t.Key),
					Outputs:      []pipeline.FieldRef{out},
					OutputWidths: []int{widthOf(t.Val)},
					Default:      []pipeline.Value{pipeline.B(widthOf(t.Val), 0)},
				})
			case ast.SetType:
				c.prog.Tables = append(c.prog.Tables, pipeline.TableSpec{
					Name: d.Name,
					Keys: keySpecs(d.Name, t.Elem),
				})
			default:
				// Scalar control variable: a parameterless table whose
				// single action parameter the control plane sets.
				w := widthOf(d.Type)
				c.prog.Tables = append(c.prog.Tables, pipeline.TableSpec{
					Name:         d.Name,
					Outputs:      []pipeline.FieldRef{out},
					OutputWidths: []int{w},
					Default:      []pipeline.Value{pipeline.B(w, 0)},
				})
			}
		}
		c.syms[d.Name] = sym
	}
	return nil
}

func keySpecs(name string, keyType ast.Type) []pipeline.KeySpec {
	cols := scalarCols(keyType)
	specs := make([]pipeline.KeySpec, len(cols))
	for i, w := range cols {
		specs[i] = pipeline.KeySpec{
			Name:  fmt.Sprintf("%s_key%d", name, i),
			Width: w,
			Kind:  pipeline.MatchExact,
		}
	}
	return specs
}

// compileInitBlock compiles tele initializers followed by the init block
// body. Constant initializers are also re-applied here so that init-time
// semantics match the interpreter exactly.
func (c *compilerState) compileInitBlock() ([]pipeline.Op, error) {
	var ops []pipeline.Op
	ops = c.applyScalarControls(ops, c.info.Prog.Init, declInits(c.info.Prog))
	for _, d := range c.info.Prog.DeclsOfKind(ast.KindTele) {
		if d.Init == nil {
			continue
		}
		assignOps, err := c.compileAssignTo(c.syms[d.Name], nil, token.ASSIGN, d.Init)
		if err != nil {
			return nil, err
		}
		ops = append(ops, assignOps...)
	}
	body, err := c.compileStmts(c.info.Prog.Init.Stmts)
	if err != nil {
		return nil, err
	}
	return append(ops, body...), nil
}

// compileTelemetryBlock prepends the hop-count increment, so that
// hop_count reads the 1-based index of the current hop.
func (c *compilerState) compileTelemetryBlock() ([]pipeline.Op, error) {
	ops := []pipeline.Op{
		pipeline.AssignOp{
			Dst:      pipeline.FieldHops,
			DstWidth: 8,
			Src:      pipeline.Bin{Op: pipeline.OpAdd, X: pipeline.Field{Ref: pipeline.FieldHops, Width: 8}, Y: pipeline.C(8, 1)},
		},
	}
	ops = c.applyScalarControls(ops, c.info.Prog.Telemetry, nil)
	body, err := c.compileStmts(c.info.Prog.Telemetry.Stmts)
	if err != nil {
		return nil, err
	}
	return append(ops, body...), nil
}

func (c *compilerState) compileBlock(b *ast.Block) ([]pipeline.Op, error) {
	ops := c.applyScalarControls(nil, b, nil)
	body, err := c.compileStmts(b.Stmts)
	if err != nil {
		return nil, err
	}
	return append(ops, body...), nil
}

// declInits returns the initializer expressions of tele declarations, so
// scalar controls they reference are applied in the init block.
func declInits(p *ast.Program) []ast.Expr {
	var out []ast.Expr
	for _, d := range p.Decls {
		if d.Kind == ast.KindTele && d.Init != nil {
			out = append(out, d.Init)
		}
	}
	return out
}

// applyScalarControls emits, at the start of a block, one apply for each
// scalar control variable the block references (§4.1: "initialized by a
// default action in a single match-action table that executes at the
// start of the pipeline").
func (c *compilerState) applyScalarControls(ops []pipeline.Op, b *ast.Block, extra []ast.Expr) []pipeline.Op {
	used := map[string]bool{}
	var scan func(e ast.Expr)
	scan = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if sym, ok := c.syms[e.Name]; ok && sym.decl.Kind == ast.KindControl {
				switch sym.decl.Type.(type) {
				case ast.DictType, ast.SetType:
				default:
					used[e.Name] = true
				}
			}
		case *ast.Unary:
			scan(e.X)
		case *ast.Binary:
			scan(e.X)
			scan(e.Y)
		case *ast.Index:
			scan(e.X)
			scan(e.Idx)
		case *ast.Tuple:
			for _, x := range e.Elems {
				scan(x)
			}
		case *ast.Call:
			for _, x := range e.Args {
				scan(x)
			}
		case *ast.Method:
			scan(e.Recv)
			for _, x := range e.Args {
				scan(x)
			}
		}
	}
	var scanStmt func(s ast.Stmt)
	scanStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, t := range s.Stmts {
				scanStmt(t)
			}
		case *ast.Assign:
			scan(s.LHS)
			scan(s.RHS)
		case *ast.If:
			scan(s.Cond)
			scanStmt(s.Then)
			if s.Else != nil {
				scanStmt(s.Else)
			}
		case *ast.For:
			for _, q := range s.Seqs {
				scan(q)
			}
			scanStmt(s.Body)
		case *ast.Report:
			for _, a := range s.Args {
				scan(a)
			}
		case *ast.ExprStmt:
			scan(s.X)
		}
	}
	if b != nil {
		for _, s := range b.Stmts {
			scanStmt(s)
		}
	}
	for _, e := range extra {
		scan(e)
	}
	// Deterministic order: declaration order.
	for _, d := range c.info.Prog.Decls {
		if used[d.Name] {
			ops = append(ops, pipeline.ApplyOp{Table: d.Name})
		}
	}
	return ops
}

func (c *compilerState) newTemp(width int) pipeline.Field {
	c.tmpCount++
	return pipeline.Field{Ref: pipeline.FieldRef(fmt.Sprintf("local.t%d", c.tmpCount)), Width: width}
}
