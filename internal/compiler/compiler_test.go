package compiler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/checkers"
	"repro/internal/indus/ast"
	"repro/internal/indus/eval"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
	"repro/internal/pipeline"
)

// harness runs an Indus program on both backends — the reference
// interpreter (internal/indus/eval) and the compiled pipeline — with
// identical switch state, and compares outcomes.
type harness struct {
	t    *testing.T
	info *types.Info
	m    *eval.Machine
	rt   *Runtime

	evalSw map[uint32]*eval.SwitchState
	pipeSw map[uint32]*pipeline.State
}

func newHarness(t *testing.T, src string) *harness {
	t.Helper()
	prog, err := parser.Parse("test.indus", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("types: %v", err)
	}
	compiled, err := Compile(info, Options{Name: "test"})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return &harness{
		t:      t,
		info:   info,
		m:      eval.New(info),
		rt:     &Runtime{Prog: compiled},
		evalSw: map[uint32]*eval.SwitchState{},
		pipeSw: map[uint32]*pipeline.State{},
	}
}

func corpusHarness(t *testing.T, key string) *harness {
	t.Helper()
	p, ok := checkers.ByKey(key)
	if !ok {
		t.Fatalf("unknown corpus key %s", key)
	}
	return newHarness(t, p.Source)
}

func (h *harness) sw(id uint32) (*eval.SwitchState, *pipeline.State) {
	if _, ok := h.evalSw[id]; !ok {
		h.evalSw[id] = eval.NewSwitchState(id)
		h.pipeSw[id] = h.rt.Prog.NewState()
	}
	return h.evalSw[id], h.pipeSw[id]
}

// valueFor builds an eval value of the declared scalar type.
func valueFor(t ast.Type, v uint64) eval.Value {
	switch t := t.(type) {
	case ast.BitType:
		return eval.NewBit(t.Width, v)
	case ast.BoolType:
		return eval.Bool(v != 0)
	}
	panic("valueFor: non-scalar")
}

func keyValues(keyType ast.Type, vals []uint64) eval.Value {
	if tt, ok := keyType.(ast.TupleType); ok {
		elems := make([]eval.Value, len(tt.Elems))
		for i, et := range tt.Elems {
			elems[i] = valueFor(et, vals[i])
		}
		return eval.Tuple{Elems: elems}
	}
	return valueFor(keyType, vals[0])
}

// installDict installs key->val into dict `name` on switch id, on both
// backends.
func (h *harness) installDict(id uint32, name string, key []uint64, val uint64) {
	es, ps := h.sw(id)
	d := h.info.Decls[name]
	dt := d.Type.(ast.DictType)

	cv, ok := es.Controls[name]
	if !ok {
		cv = eval.NewControlDict()
		es.Controls[name] = cv
	}
	cv.Put(keyValues(dt.Key, key), valueFor(dt.Val, val))

	keys := make([]pipeline.KeyMatch, len(key))
	for i, k := range key {
		keys[i] = pipeline.ExactKey(k)
	}
	w := 1
	if bt, ok := dt.Val.(ast.BitType); ok {
		w = bt.Width
	}
	if err := ps.Tables[name].Insert(pipeline.Entry{Keys: keys, Action: []pipeline.Value{pipeline.B(w, val)}}); err != nil {
		h.t.Fatalf("install %s: %v", name, err)
	}
}

// installScalar sets scalar control `name` on switch id on both backends.
func (h *harness) installScalar(id uint32, name string, val uint64) {
	es, ps := h.sw(id)
	d := h.info.Decls[name]
	es.Controls[name] = eval.NewControlScalar(valueFor(d.Type, val))
	w := 1
	if bt, ok := d.Type.(ast.BitType); ok {
		w = bt.Width
	}
	if err := ps.Tables[name].Insert(pipeline.Entry{Action: []pipeline.Value{pipeline.B(w, val)}}); err != nil {
		h.t.Fatalf("install %s: %v", name, err)
	}
}

// installSet adds a member to control set `name` on switch id.
func (h *harness) installSet(id uint32, name string, key ...uint64) {
	es, ps := h.sw(id)
	d := h.info.Decls[name]
	st := d.Type.(ast.SetType)

	cv, ok := es.Controls[name]
	if !ok {
		cv = eval.NewControlSet()
		es.Controls[name] = cv
	}
	cv.Add(keyValues(st.Elem, key))

	keys := make([]pipeline.KeyMatch, len(key))
	for i, k := range key {
		keys[i] = pipeline.ExactKey(k)
	}
	if err := ps.Tables[name].Insert(pipeline.Entry{Keys: keys}); err != nil {
		h.t.Fatalf("install %s: %v", name, err)
	}
}

// hopSpec is one hop of a differential trace.
type hopSpec struct {
	sw      uint32
	headers map[string]uint64
	pktLen  uint32
}

// flattenEvalArgs flattens tuples in report args to scalars, matching
// the pipeline's digest layout.
func flattenEvalArgs(args []eval.Value) []uint64 {
	var out []uint64
	var flat func(v eval.Value)
	flat = func(v eval.Value) {
		switch v := v.(type) {
		case eval.Bit:
			out = append(out, v.V)
		case eval.Bool:
			if v {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		case eval.Tuple:
			for _, e := range v.Elems {
				flat(e)
			}
		default:
			panic("unexpected report arg type")
		}
	}
	for _, a := range args {
		flat(a)
	}
	return out
}

// runBoth executes the trace on both backends and compares verdicts and
// report payloads; it returns (rejected, reports).
func (h *harness) runBoth(trace []hopSpec) (bool, [][]uint64) {
	h.t.Helper()

	evalHops := make([]eval.Hop, len(trace))
	pipeEnvs := make([]HopEnv, len(trace))
	for i, hs := range trace {
		es, ps := h.sw(hs.sw)
		pktLen := hs.pktLen
		if pktLen == 0 {
			pktLen = 100
		}
		headers := map[string]eval.Value{}
		pipeHeaders := map[string]pipeline.Value{}
		for name, v := range hs.headers {
			d := h.info.Decls[name]
			headers[name] = valueFor(d.Type, v)
			w := 1
			if bt, ok := d.Type.(ast.BitType); ok {
				w = bt.Width
			}
			pipeHeaders[h.rt.Prog.HeaderBindings[name]] = pipeline.B(w, v)
		}
		evalHops[i] = eval.Hop{Switch: es, Headers: headers, PacketLen: pktLen}
		pipeEnvs[i] = HopEnv{State: ps, SwitchID: hs.sw, Headers: pipeHeaders, PacketLen: pktLen}
	}

	want, err := h.m.RunTrace(evalHops)
	if err != nil {
		h.t.Fatalf("interpreter: %v", err)
	}
	got, err := h.rt.RunTrace(pipeEnvs)
	if err != nil {
		h.t.Fatalf("pipeline: %v", err)
	}

	if got.Reject != (want.Verdict == eval.VerdictReject) {
		h.t.Fatalf("verdict mismatch: pipeline reject=%v, interpreter %s", got.Reject, want.Verdict)
	}
	if len(got.Reports) != len(want.Reports) {
		h.t.Fatalf("report count mismatch: pipeline %d, interpreter %d", len(got.Reports), len(want.Reports))
	}
	var reports [][]uint64
	for i := range got.Reports {
		wantArgs := flattenEvalArgs(want.Reports[i].Args)
		gotArgs := make([]uint64, len(got.Reports[i].Args))
		for j, v := range got.Reports[i].Args {
			gotArgs[j] = v.V
		}
		if len(gotArgs) != len(wantArgs) {
			h.t.Fatalf("report %d arity mismatch: %v vs %v", i, gotArgs, wantArgs)
		}
		for j := range gotArgs {
			if gotArgs[j] != wantArgs[j] {
				h.t.Fatalf("report %d arg %d: pipeline %d, interpreter %d", i, j, gotArgs[j], wantArgs[j])
			}
		}
		reports = append(reports, gotArgs)
	}
	return got.Reject, reports
}

// ---------------------------------------------------------------------------
// Differential scenarios over the corpus

func TestDiffMultiTenancy(t *testing.T) {
	h := corpusHarness(t, "multi-tenancy")
	for _, id := range []uint32{1, 2} {
		h.installDict(id, "tenants", []uint64{1}, 10)
		h.installDict(id, "tenants", []uint64{2}, 20)
		h.installDict(id, "tenants", []uint64{3}, 10)
	}
	if rej, _ := h.runBoth([]hopSpec{
		{sw: 1, headers: map[string]uint64{"in_port": 1, "eg_port": 9}},
		{sw: 2, headers: map[string]uint64{"in_port": 9, "eg_port": 3}},
	}); rej {
		t.Fatal("same-tenant path must forward")
	}
	if rej, _ := h.runBoth([]hopSpec{
		{sw: 1, headers: map[string]uint64{"in_port": 1, "eg_port": 9}},
		{sw: 2, headers: map[string]uint64{"in_port": 9, "eg_port": 2}},
	}); !rej {
		t.Fatal("cross-tenant path must reject")
	}
}

func TestDiffValleyFree(t *testing.T) {
	h := corpusHarness(t, "valley-free")
	for id, spine := range map[uint32]uint64{1: 0, 2: 0, 3: 1, 4: 1} {
		h.installScalar(id, "is_spine_switch", spine)
	}
	if rej, _ := h.runBoth([]hopSpec{{sw: 1}, {sw: 3}, {sw: 2}}); rej {
		t.Fatal("valley-free path rejected")
	}
	if rej, _ := h.runBoth([]hopSpec{{sw: 1}, {sw: 3}, {sw: 2}, {sw: 4}, {sw: 1}}); !rej {
		t.Fatal("valley path must reject")
	}
}

func TestDiffStatefulFirewall(t *testing.T) {
	h := corpusHarness(t, "stateful-firewall")
	in, out := uint64(0x0a000001), uint64(0xc0a80101)
	for _, id := range []uint32{1, 2} {
		h.installDict(id, "allowed", []uint64{in, out}, 1)
	}
	hdrs := map[string]uint64{"ipv4_src": in, "ipv4_dst": out}
	rej, reports := h.runBoth([]hopSpec{{sw: 1, headers: hdrs}, {sw: 2, headers: hdrs}})
	if rej {
		t.Fatal("allowed flow rejected")
	}
	if len(reports) != 1 || reports[0][0] != out || reports[0][1] != in {
		t.Fatalf("reverse-install report wrong: %v", reports)
	}

	back := map[string]uint64{"ipv4_src": out, "ipv4_dst": in}
	if rej, _ := h.runBoth([]hopSpec{{sw: 2, headers: back}, {sw: 1, headers: back}}); !rej {
		t.Fatal("unsolicited inbound flow must reject")
	}
}

func TestDiffLoopFreedom(t *testing.T) {
	h := corpusHarness(t, "loop-freedom")
	if rej, _ := h.runBoth([]hopSpec{{sw: 1}, {sw: 2}, {sw: 3}, {sw: 4}}); rej {
		t.Fatal("loop-free path rejected")
	}
	rej, reports := h.runBoth([]hopSpec{{sw: 1}, {sw: 2}, {sw: 1}})
	if !rej {
		t.Fatal("loop must reject")
	}
	if len(reports) != 1 || reports[0][0] != 1 {
		t.Fatalf("dup switch report: %v", reports)
	}
}

func TestDiffWaypointing(t *testing.T) {
	h := corpusHarness(t, "waypointing")
	for _, id := range []uint32{1, 2, 3} {
		h.installScalar(id, "waypoint_id", 2)
	}
	if rej, _ := h.runBoth([]hopSpec{{sw: 1}, {sw: 2}, {sw: 3}}); rej {
		t.Fatal("waypointed path rejected")
	}
	if rej, _ := h.runBoth([]hopSpec{{sw: 1}, {sw: 3}}); !rej {
		t.Fatal("bypass must reject")
	}
}

func TestDiffEgressValidity(t *testing.T) {
	h := corpusHarness(t, "egress-validity")
	h.installSet(1, "allowed_eg_ports", 1)
	h.installSet(1, "allowed_eg_ports", 2)
	h.installSet(2, "allowed_eg_ports", 4)

	if rej, _ := h.runBoth([]hopSpec{
		{sw: 1, headers: map[string]uint64{"eg_port": 2}},
		{sw: 2, headers: map[string]uint64{"eg_port": 4}},
	}); rej {
		t.Fatal("allowed egress rejected")
	}
	rej, reports := h.runBoth([]hopSpec{
		{sw: 1, headers: map[string]uint64{"eg_port": 3}},
		{sw: 2, headers: map[string]uint64{"eg_port": 4}},
	})
	if !rej {
		t.Fatal("bad egress must reject")
	}
	if len(reports) != 1 || reports[0][0] != 1 || reports[0][1] != 3 {
		t.Fatalf("report: %v", reports)
	}
}

func TestDiffRoutingValidity(t *testing.T) {
	h := corpusHarness(t, "routing-validity")
	for id, leaf := range map[uint32]uint64{1: 1, 2: 1, 3: 0, 4: 0} {
		h.installScalar(id, "is_leaf", leaf)
	}
	if rej, _ := h.runBoth([]hopSpec{{sw: 1}, {sw: 3}, {sw: 2}}); rej {
		t.Fatal("leaf-spine-leaf rejected")
	}
	if rej, _ := h.runBoth([]hopSpec{{sw: 3}, {sw: 2}}); !rej {
		t.Fatal("spine-first path must reject")
	}
	if rej, _ := h.runBoth([]hopSpec{{sw: 1}, {sw: 2}, {sw: 3}, {sw: 1}}); !rej {
		t.Fatal("leaf in the middle must reject")
	}
}

func TestDiffVLANIsolation(t *testing.T) {
	h := corpusHarness(t, "vlan-isolation")
	h.installDict(1, "vlan_members", []uint64{100}, 1)
	h.installDict(2, "vlan_members", []uint64{100}, 1)
	h.installDict(3, "vlan_members", []uint64{200}, 1)

	v100 := map[string]uint64{"vlan_id": 100}
	if rej, _ := h.runBoth([]hopSpec{{sw: 1, headers: v100}, {sw: 2, headers: v100}}); rej {
		t.Fatal("same-vlan path rejected")
	}
	// Switch 3 is not a member of VLAN 100.
	if rej, _ := h.runBoth([]hopSpec{{sw: 1, headers: v100}, {sw: 3, headers: v100}}); !rej {
		t.Fatal("non-member switch must reject")
	}
	// VLAN changes mid-path.
	if rej, _ := h.runBoth([]hopSpec{
		{sw: 1, headers: v100},
		{sw: 2, headers: map[string]uint64{"vlan_id": 200}},
	}); !rej {
		t.Fatal("vlan change must reject")
	}
}

func TestDiffServiceChain(t *testing.T) {
	h := corpusHarness(t, "service-chain")
	for _, id := range []uint32{1, 2, 3, 4, 5} {
		h.installScalar(id, "src_switch", 1)
		h.installScalar(id, "dst_switch", 5)
		h.installScalar(id, "chain_len", 2)
		h.installDict(id, "chain_index", []uint64{2}, 1)
		h.installDict(id, "chain_index", []uint64{3}, 2)
	}
	if rej, _ := h.runBoth([]hopSpec{{sw: 1}, {sw: 2}, {sw: 3}, {sw: 5}}); rej {
		t.Fatal("in-order chain rejected")
	}
	if rej, _ := h.runBoth([]hopSpec{{sw: 1}, {sw: 3}, {sw: 2}, {sw: 5}}); !rej {
		t.Fatal("out-of-order chain must reject")
	}
	if rej, _ := h.runBoth([]hopSpec{{sw: 1}, {sw: 2}, {sw: 5}}); !rej {
		t.Fatal("skipped waypoint must reject")
	}
	// A packet not starting at src_switch is out of scope: forward.
	if rej, _ := h.runBoth([]hopSpec{{sw: 4}, {sw: 5}}); rej {
		t.Fatal("non-chain traffic must forward")
	}
}

func TestDiffSourceRoutingValidation(t *testing.T) {
	h := corpusHarness(t, "source-routing")
	ok := []hopSpec{
		{sw: 1, headers: map[string]uint64{"sr_next": 1, "sr_valid": 1}},
		{sw: 3, headers: map[string]uint64{"sr_next": 3, "sr_valid": 1}},
		{sw: 2, headers: map[string]uint64{"sr_next": 2, "sr_valid": 1}},
	}
	if rej, _ := h.runBoth(ok); rej {
		t.Fatal("valid source route rejected")
	}
	bad := []hopSpec{
		{sw: 1, headers: map[string]uint64{"sr_next": 1, "sr_valid": 1}},
		{sw: 4, headers: map[string]uint64{"sr_next": 3, "sr_valid": 1}}, // went to 4, route said 3
		{sw: 2, headers: map[string]uint64{"sr_next": 2, "sr_valid": 1}},
	}
	if rej, _ := h.runBoth(bad); !rej {
		t.Fatal("diverted packet must reject")
	}
}

// TestDiffFigure2LoadBalance runs the pedagogical Figure 2 program —
// telemetry arrays plus a lockstep multi-variable for loop in the
// checker — differentially, covering the loop-unrolling path.
func TestDiffFigure2LoadBalance(t *testing.T) {
	h := newHarness(t, checkers.LoadBalanceFig2Src)
	for _, id := range []uint32{1, 2} {
		h.installScalar(id, "left_port", 1)
		h.installScalar(id, "right_port", 2)
		h.installScalar(id, "thresh", 500)
		h.installDict(id, "is_uplink", []uint64{1}, 1)
		h.installDict(id, "is_uplink", []uint64{2}, 1)
	}
	// Build up imbalance on the left port; each trace snapshots the
	// loads at both hops, and once the difference exceeds the threshold
	// the checker's loop reports for every offending snapshot.
	var sawReport bool
	for i := 0; i < 4; i++ {
		_, reports := h.runBoth([]hopSpec{
			{sw: 1, headers: map[string]uint64{"eg_port": 1}, pktLen: 300},
			{sw: 2, headers: map[string]uint64{"eg_port": 9}, pktLen: 300},
		})
		if len(reports) > 0 {
			sawReport = true
		}
	}
	if !sawReport {
		t.Fatal("figure 2 checker never reported the imbalance")
	}
}

func TestDiffLoadBalance(t *testing.T) {
	h := corpusHarness(t, "load-balance")
	for _, id := range []uint32{1, 2} {
		h.installScalar(id, "left_port", 1)
		h.installScalar(id, "right_port", 2)
		h.installScalar(id, "thresh", 500)
		h.installDict(id, "is_uplink", []uint64{1}, 1)
		h.installDict(id, "is_uplink", []uint64{2}, 1)
	}
	// Balanced: alternate packets across the two uplinks; the running
	// difference never exceeds the threshold.
	for i := 0; i < 4; i++ {
		port := uint64(1 + i%2)
		if _, reports := h.runBoth([]hopSpec{
			{sw: 1, headers: map[string]uint64{"eg_port": port}, pktLen: 400},
			{sw: 2, headers: map[string]uint64{"eg_port": 9}, pktLen: 400},
		}); len(reports) != 0 {
			t.Fatalf("balanced load reported an imbalance: %v", reports)
		}
	}
	// Hammer the left port until the threshold trips.
	var reported bool
	for i := 0; i < 5; i++ {
		_, reports := h.runBoth([]hopSpec{
			{sw: 1, headers: map[string]uint64{"eg_port": 1}, pktLen: 400},
			{sw: 2, headers: map[string]uint64{"eg_port": 9}, pktLen: 400},
		})
		if len(reports) > 0 {
			reported = true
		}
	}
	if !reported {
		t.Fatal("sustained imbalance never reported")
	}
}

func TestDiffAppFiltering(t *testing.T) {
	h := corpusHarness(t, "app-filtering")
	ue, app := uint64(0x0afa0001), uint64(0xc0a80505)
	const udp = 17
	// deny=1 for (ue, udp, app, 80), allow=2 for (ue, udp, app, 81)
	for _, id := range []uint32{1, 2} {
		h.installDict(id, "filtering_actions", []uint64{ue, udp, app, 80}, 1)
		h.installDict(id, "filtering_actions", []uint64{ue, udp, app, 81}, 2)
	}
	uplink := func(dport, dropped uint64) []hopSpec {
		hdrs := map[string]uint64{
			"inner_ipv4_is_valid": 1, "inner_udp_is_valid": 1, "inner_tcp_is_valid": 0,
			"ipv4_is_valid": 0, "tcp_is_valid": 0, "udp_is_valid": 0,
			"inner_ipv4_src": ue, "inner_ipv4_dst": app, "inner_ipv4_proto": udp,
			"inner_udp_dport": dport, "inner_tcp_dport": 0,
			"outer_ipv4_src": 0, "outer_ipv4_dst": 0, "outer_ipv4_proto": 0,
			"outer_tcp_sport": 0, "outer_udp_sport": 0,
			"to_be_dropped": dropped,
		}
		return []hopSpec{{sw: 1, headers: hdrs}, {sw: 2, headers: hdrs}}
	}

	// Denied app forwarded by the data plane: reject + report.
	rej, reports := h.runBoth(uplink(80, 0))
	if !rej || len(reports) != 1 {
		t.Fatalf("deny violation: rej=%v reports=%v", rej, reports)
	}
	if reports[0][4] != 1 {
		t.Fatalf("report action = %d, want 1 (deny)", reports[0][4])
	}
	// Allowed app dropped by the data plane (the Figure 11 bug): report.
	rej, reports = h.runBoth(uplink(81, 1))
	if rej || len(reports) != 1 {
		t.Fatalf("allow violation: rej=%v reports=%v", rej, reports)
	}
	if reports[0][4] != 2 {
		t.Fatalf("report action = %d, want 2 (allow)", reports[0][4])
	}
	// Allowed and forwarded: clean.
	rej, reports = h.runBoth(uplink(81, 0))
	if rej || len(reports) != 0 {
		t.Fatalf("clean uplink: rej=%v reports=%v", rej, reports)
	}
	// Denied and dropped: data plane already enforcing, nothing to say.
	rej, reports = h.runBoth(uplink(80, 1))
	if rej || len(reports) != 0 {
		t.Fatalf("enforced deny: rej=%v reports=%v", rej, reports)
	}
}

// TestDiffRandomTraces drives the multi-tenancy and loop-freedom
// checkers with randomized traces and states; both backends must agree
// on every packet.
func TestDiffRandomTraces(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}

	t.Run("multi-tenancy", func(t *testing.T) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			h := corpusHarness(t, "multi-tenancy")
			for id := uint32(1); id <= 3; id++ {
				for port := uint64(0); port < 8; port++ {
					h.installDict(id, "tenants", []uint64{port}, uint64(rng.Intn(3)))
				}
			}
			n := rng.Intn(4) + 1
			trace := make([]hopSpec, n)
			for i := range trace {
				trace[i] = hopSpec{
					sw: uint32(rng.Intn(3) + 1),
					headers: map[string]uint64{
						"in_port": uint64(rng.Intn(8)),
						"eg_port": uint64(rng.Intn(8)),
					},
				}
			}
			h.runBoth(trace) // runBoth fails the test on divergence
			return true
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("loop-freedom", func(t *testing.T) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			h := corpusHarness(t, "loop-freedom")
			n := rng.Intn(6) + 1
			trace := make([]hopSpec, n)
			for i := range trace {
				trace[i] = hopSpec{sw: uint32(rng.Intn(4) + 1)}
			}
			h.runBoth(trace)
			return true
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCompileCorpus compiles every corpus program and sanity-checks the
// generated IR shape.
func TestCompileCorpus(t *testing.T) {
	for _, p := range checkers.All {
		p := p
		t.Run(p.Key, func(t *testing.T) {
			info, err := p.Parse()
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Compile(info, Options{Name: p.Key})
			if err != nil {
				t.Fatal(err)
			}
			// Each control var must be realized as a table, each sensor
			// as a register, each tele var as a telemetry field.
			if got, want := len(prog.Tables), len(info.Prog.DeclsOfKind(ast.KindControl)); got != want {
				t.Errorf("tables: got %d, want %d", got, want)
			}
			if got, want := len(prog.Registers), len(info.Prog.DeclsOfKind(ast.KindSensor)); got != want {
				t.Errorf("registers: got %d, want %d", got, want)
			}
			if got, want := len(prog.Tele), len(info.Prog.DeclsOfKind(ast.KindTele)); got != want {
				t.Errorf("tele fields: got %d, want %d", got, want)
			}
			if prog.TeleWireBits() <= 0 {
				t.Error("telemetry wire size must be positive")
			}
		})
	}
}

// TestPerHopChecking exercises the §4.3 variant: with CheckEveryHop the
// loop checker rejects as soon as the revisit happens, not only at the
// edge.
func TestPerHopChecking(t *testing.T) {
	info := checkers.MustParse("loop-freedom")
	prog, err := Compile(info, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{Prog: prog, CheckEveryHop: true}
	st := prog.NewState()

	var blob []byte
	// Hops: 1, 2, 1(loop!), 3 — with per-hop checking the third hop
	// already rejects.
	ids := []uint32{1, 2, 1, 3}
	var rejectedAt = -1
	for i, id := range ids {
		hr, err := rt.RunHop(blob, HopEnv{State: st, SwitchID: id, PacketLen: 100}, i == 0, i == len(ids)-1)
		if err != nil {
			t.Fatal(err)
		}
		blob = hr.Blob
		if hr.Reject && rejectedAt == -1 {
			rejectedAt = i
		}
	}
	if rejectedAt != 2 {
		t.Fatalf("per-hop checking rejected at hop %d, want 2", rejectedAt)
	}
}

// TestTelemetryBlobRoundTrip checks that the packed blob carries all
// telemetry faithfully between hops.
func TestTelemetryBlobRoundTrip(t *testing.T) {
	info := checkers.MustParse("source-routing")
	prog, err := Compile(info, Options{})
	if err != nil {
		t.Fatal(err)
	}
	phv := pipeline.PHV{}
	if err := prog.DecodeTele(nil, phv); err != nil {
		t.Fatal(err)
	}
	phv.Set(pipeline.FieldHops, pipeline.B(8, 3))
	phv.Set(pipeline.ArrayCount("hydra_header.actual_path"), pipeline.B(8, 2))
	phv.Set(pipeline.ArraySlot("hydra_header.actual_path", 0), pipeline.B(32, 0xdeadbeef))
	phv.Set(pipeline.ArraySlot("hydra_header.actual_path", 1), pipeline.B(32, 7))
	phv.Set(pipeline.FieldRef("hydra_header.mismatch"), pipeline.B(1, 1))

	blob := prog.EncodeTele(phv)
	phv2 := pipeline.PHV{}
	if err := prog.DecodeTele(blob, phv2); err != nil {
		t.Fatal(err)
	}
	for _, f := range []pipeline.FieldRef{
		pipeline.FieldHops,
		pipeline.ArrayCount("hydra_header.actual_path"),
		pipeline.ArraySlot("hydra_header.actual_path", 0),
		pipeline.ArraySlot("hydra_header.actual_path", 1),
		"hydra_header.mismatch",
	} {
		if phv.Get(f).V != phv2.Get(f).V {
			t.Errorf("field %s: %d != %d", f, phv.Get(f).V, phv2.Get(f).V)
		}
	}
	wantBits := prog.TeleWireBits()
	if len(blob) != (wantBits+7)/8 {
		t.Errorf("blob is %d bytes, want %d bits rounded up", len(blob), wantBits)
	}
}

// TestDiffDynamicArrayIndexing covers the runtime-indexed header-stack
// paths: a write through a variable index (SetSlotOp) and a read through
// a variable index (the unrolled mux chain of P4-16 conditionals).
func TestDiffDynamicArrayIndexing(t *testing.T) {
	src := `
tele bit<32>[4] xs;
tele bit<8> idx;
tele bit<32> got;
header bit<8> which;
{ }
{
  idx = which;
  xs[idx] = switch_id;
  got = xs[idx];
  xs[idx] += 1;
}
{
  if (xs[2] == 0 && got == 0) { reject; }
}
`
	h := newHarness(t, src)
	for _, which := range []uint64{0, 1, 2, 3, 7} { // 7 is out of range: dropped write, zero read
		h.runBoth([]hopSpec{
			{sw: 5, headers: map[string]uint64{"which": which}},
			{sw: 6, headers: map[string]uint64{"which": which}},
		})
	}
}

// TestDiffHopCountInInit pins the init-block hop_count semantics: the
// init block runs before the telemetry block's increment, so the
// compiler reads hop_count+1 there to match the interpreter.
func TestDiffHopCountInInit(t *testing.T) {
	src := `
tele bit<8> at_init;
tele bit<8> at_tele;
tele bit<8> at_check;
{ at_init = hop_count; }
{ at_tele = hop_count; }
{ at_check = hop_count; }
`
	h := newHarness(t, src)
	_, _ = h.runBoth([]hopSpec{{sw: 1}, {sw: 2}, {sw: 3}})

	// And the concrete values: init sees 1, last telemetry/checker see 3.
	info := h.info
	m := eval.New(info)
	out, err := m.RunTrace([]eval.Hop{
		{Switch: eval.NewSwitchState(1), PacketLen: 1},
		{Switch: eval.NewSwitchState(2), PacketLen: 1},
		{Switch: eval.NewSwitchState(3), PacketLen: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Tele["at_init"].Equal(eval.NewBit(8, 1)) {
		t.Fatalf("at_init = %v, want 1", out.Tele["at_init"])
	}
	if !out.Tele["at_tele"].Equal(eval.NewBit(8, 3)) || !out.Tele["at_check"].Equal(eval.NewBit(8, 3)) {
		t.Fatalf("at_tele/at_check = %v/%v, want 3/3", out.Tele["at_tele"], out.Tele["at_check"])
	}
}

// TestAlignedTelemetryEncoding pins the DESIGN.md ablation: the aligned
// encoding round-trips identically to the packed one but costs more
// wire bytes whenever a program carries sub-byte or odd-width fields.
func TestAlignedTelemetryEncoding(t *testing.T) {
	info := checkers.MustParse("valley-free") // two booleans: 10 bits packed
	packed := MustCompile(info, Options{Name: "vf"})
	aligned := MustCompile(info, Options{Name: "vf", AlignedTele: true})

	if p, a := packed.TeleWireBits(), aligned.TeleWireBits(); a <= p {
		t.Fatalf("aligned (%d bits) should exceed packed (%d bits)", a, p)
	}

	// Differential run under the aligned encoding: verdicts unchanged.
	rtA := &Runtime{Prog: aligned}
	stA := aligned.NewState()
	if err := stA.Tables["is_spine_switch"].Insert(pipeline.Entry{
		Action: []pipeline.Value{pipeline.B(1, 1)},
	}); err != nil {
		t.Fatal(err)
	}
	// Two spine hops on the same (spine-configured) state: reject.
	res, err := rtA.RunTrace([]HopEnv{
		{State: stA, SwitchID: 3, PacketLen: 100},
		{State: stA, SwitchID: 4, PacketLen: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject {
		t.Fatal("aligned encoding changed the verdict")
	}

	// Blob round trip under alignment.
	phv := pipeline.PHV{}
	if err := aligned.DecodeTele(nil, phv); err != nil {
		t.Fatal(err)
	}
	phv.Set(pipeline.FieldHops, pipeline.B(8, 2))
	phv.Set(pipeline.FieldRef("hydra_header.visited_spine"), pipeline.B(1, 1))
	blob := aligned.EncodeTele(phv)
	if len(blob) != (aligned.TeleWireBits()+7)/8 {
		t.Fatalf("aligned blob is %d bytes, want %d bits rounded up", len(blob), aligned.TeleWireBits())
	}
	phv2 := pipeline.PHV{}
	if err := aligned.DecodeTele(blob, phv2); err != nil {
		t.Fatal(err)
	}
	if phv2.Get("hydra_header.visited_spine").V != 1 || phv2.Get(pipeline.FieldHops).V != 2 {
		t.Fatal("aligned round trip lost fields")
	}
}
