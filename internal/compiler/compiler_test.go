package compiler_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/difftest"
	"repro/internal/indus/ast"
	"repro/internal/indus/eval"
	"repro/internal/pipeline"
)

// The differential harness lives in internal/difftest so the engine and
// conformance suites can reuse it; these aliases keep the scenario
// tests terse.
type hopSpec = difftest.HopSpec

func newHarness(t *testing.T, src string) *difftest.Harness { return difftest.NewHarness(t, src) }

func corpusHarness(t *testing.T, key string) *difftest.Harness { return difftest.CorpusHarness(t, key) }

// ---------------------------------------------------------------------------
// Differential scenarios over the corpus

func TestDiffMultiTenancy(t *testing.T) {
	h := corpusHarness(t, "multi-tenancy")
	for _, id := range []uint32{1, 2} {
		h.InstallDict(id, "tenants", []uint64{1}, 10)
		h.InstallDict(id, "tenants", []uint64{2}, 20)
		h.InstallDict(id, "tenants", []uint64{3}, 10)
	}
	if rej, _ := h.RunBoth([]hopSpec{
		{SW: 1, Headers: map[string]uint64{"in_port": 1, "eg_port": 9}},
		{SW: 2, Headers: map[string]uint64{"in_port": 9, "eg_port": 3}},
	}); rej {
		t.Fatal("same-tenant path must forward")
	}
	if rej, _ := h.RunBoth([]hopSpec{
		{SW: 1, Headers: map[string]uint64{"in_port": 1, "eg_port": 9}},
		{SW: 2, Headers: map[string]uint64{"in_port": 9, "eg_port": 2}},
	}); !rej {
		t.Fatal("cross-tenant path must reject")
	}
}

func TestDiffValleyFree(t *testing.T) {
	h := corpusHarness(t, "valley-free")
	for id, spine := range map[uint32]uint64{1: 0, 2: 0, 3: 1, 4: 1} {
		h.InstallScalar(id, "is_spine_switch", spine)
	}
	if rej, _ := h.RunBoth([]hopSpec{{SW: 1}, {SW: 3}, {SW: 2}}); rej {
		t.Fatal("valley-free path rejected")
	}
	if rej, _ := h.RunBoth([]hopSpec{{SW: 1}, {SW: 3}, {SW: 2}, {SW: 4}, {SW: 1}}); !rej {
		t.Fatal("valley path must reject")
	}
}

func TestDiffStatefulFirewall(t *testing.T) {
	h := corpusHarness(t, "stateful-firewall")
	in, out := uint64(0x0a000001), uint64(0xc0a80101)
	for _, id := range []uint32{1, 2} {
		h.InstallDict(id, "allowed", []uint64{in, out}, 1)
	}
	hdrs := map[string]uint64{"ipv4_src": in, "ipv4_dst": out}
	rej, reports := h.RunBoth([]hopSpec{{SW: 1, Headers: hdrs}, {SW: 2, Headers: hdrs}})
	if rej {
		t.Fatal("allowed flow rejected")
	}
	if len(reports) != 1 || reports[0][0] != out || reports[0][1] != in {
		t.Fatalf("reverse-install report wrong: %v", reports)
	}

	back := map[string]uint64{"ipv4_src": out, "ipv4_dst": in}
	if rej, _ := h.RunBoth([]hopSpec{{SW: 2, Headers: back}, {SW: 1, Headers: back}}); !rej {
		t.Fatal("unsolicited inbound flow must reject")
	}
}

func TestDiffLoopFreedom(t *testing.T) {
	h := corpusHarness(t, "loop-freedom")
	if rej, _ := h.RunBoth([]hopSpec{{SW: 1}, {SW: 2}, {SW: 3}, {SW: 4}}); rej {
		t.Fatal("loop-free path rejected")
	}
	rej, reports := h.RunBoth([]hopSpec{{SW: 1}, {SW: 2}, {SW: 1}})
	if !rej {
		t.Fatal("loop must reject")
	}
	if len(reports) != 1 || reports[0][0] != 1 {
		t.Fatalf("dup switch report: %v", reports)
	}
}

func TestDiffWaypointing(t *testing.T) {
	h := corpusHarness(t, "waypointing")
	for _, id := range []uint32{1, 2, 3} {
		h.InstallScalar(id, "waypoint_id", 2)
	}
	if rej, _ := h.RunBoth([]hopSpec{{SW: 1}, {SW: 2}, {SW: 3}}); rej {
		t.Fatal("waypointed path rejected")
	}
	if rej, _ := h.RunBoth([]hopSpec{{SW: 1}, {SW: 3}}); !rej {
		t.Fatal("bypass must reject")
	}
}

func TestDiffEgressValidity(t *testing.T) {
	h := corpusHarness(t, "egress-validity")
	h.InstallSet(1, "allowed_eg_ports", 1)
	h.InstallSet(1, "allowed_eg_ports", 2)
	h.InstallSet(2, "allowed_eg_ports", 4)

	if rej, _ := h.RunBoth([]hopSpec{
		{SW: 1, Headers: map[string]uint64{"eg_port": 2}},
		{SW: 2, Headers: map[string]uint64{"eg_port": 4}},
	}); rej {
		t.Fatal("allowed egress rejected")
	}
	rej, reports := h.RunBoth([]hopSpec{
		{SW: 1, Headers: map[string]uint64{"eg_port": 3}},
		{SW: 2, Headers: map[string]uint64{"eg_port": 4}},
	})
	if !rej {
		t.Fatal("bad egress must reject")
	}
	if len(reports) != 1 || reports[0][0] != 1 || reports[0][1] != 3 {
		t.Fatalf("report: %v", reports)
	}
}

func TestDiffRoutingValidity(t *testing.T) {
	h := corpusHarness(t, "routing-validity")
	for id, leaf := range map[uint32]uint64{1: 1, 2: 1, 3: 0, 4: 0} {
		h.InstallScalar(id, "is_leaf", leaf)
	}
	if rej, _ := h.RunBoth([]hopSpec{{SW: 1}, {SW: 3}, {SW: 2}}); rej {
		t.Fatal("leaf-spine-leaf rejected")
	}
	if rej, _ := h.RunBoth([]hopSpec{{SW: 3}, {SW: 2}}); !rej {
		t.Fatal("spine-first path must reject")
	}
	if rej, _ := h.RunBoth([]hopSpec{{SW: 1}, {SW: 2}, {SW: 3}, {SW: 1}}); !rej {
		t.Fatal("leaf in the middle must reject")
	}
}

func TestDiffVLANIsolation(t *testing.T) {
	h := corpusHarness(t, "vlan-isolation")
	h.InstallDict(1, "vlan_members", []uint64{100}, 1)
	h.InstallDict(2, "vlan_members", []uint64{100}, 1)
	h.InstallDict(3, "vlan_members", []uint64{200}, 1)

	v100 := map[string]uint64{"vlan_id": 100}
	if rej, _ := h.RunBoth([]hopSpec{{SW: 1, Headers: v100}, {SW: 2, Headers: v100}}); rej {
		t.Fatal("same-vlan path rejected")
	}
	// Switch 3 is not a member of VLAN 100.
	if rej, _ := h.RunBoth([]hopSpec{{SW: 1, Headers: v100}, {SW: 3, Headers: v100}}); !rej {
		t.Fatal("non-member switch must reject")
	}
	// VLAN changes mid-path.
	if rej, _ := h.RunBoth([]hopSpec{
		{SW: 1, Headers: v100},
		{SW: 2, Headers: map[string]uint64{"vlan_id": 200}},
	}); !rej {
		t.Fatal("vlan change must reject")
	}
}

func TestDiffServiceChain(t *testing.T) {
	h := corpusHarness(t, "service-chain")
	for _, id := range []uint32{1, 2, 3, 4, 5} {
		h.InstallScalar(id, "src_switch", 1)
		h.InstallScalar(id, "dst_switch", 5)
		h.InstallScalar(id, "chain_len", 2)
		h.InstallDict(id, "chain_index", []uint64{2}, 1)
		h.InstallDict(id, "chain_index", []uint64{3}, 2)
	}
	if rej, _ := h.RunBoth([]hopSpec{{SW: 1}, {SW: 2}, {SW: 3}, {SW: 5}}); rej {
		t.Fatal("in-order chain rejected")
	}
	if rej, _ := h.RunBoth([]hopSpec{{SW: 1}, {SW: 3}, {SW: 2}, {SW: 5}}); !rej {
		t.Fatal("out-of-order chain must reject")
	}
	if rej, _ := h.RunBoth([]hopSpec{{SW: 1}, {SW: 2}, {SW: 5}}); !rej {
		t.Fatal("skipped waypoint must reject")
	}
	// A packet not starting at src_switch is out of scope: forward.
	if rej, _ := h.RunBoth([]hopSpec{{SW: 4}, {SW: 5}}); rej {
		t.Fatal("non-chain traffic must forward")
	}
}

func TestDiffSourceRoutingValidation(t *testing.T) {
	h := corpusHarness(t, "source-routing")
	ok := []hopSpec{
		{SW: 1, Headers: map[string]uint64{"sr_next": 1, "sr_valid": 1}},
		{SW: 3, Headers: map[string]uint64{"sr_next": 3, "sr_valid": 1}},
		{SW: 2, Headers: map[string]uint64{"sr_next": 2, "sr_valid": 1}},
	}
	if rej, _ := h.RunBoth(ok); rej {
		t.Fatal("valid source route rejected")
	}
	bad := []hopSpec{
		{SW: 1, Headers: map[string]uint64{"sr_next": 1, "sr_valid": 1}},
		{SW: 4, Headers: map[string]uint64{"sr_next": 3, "sr_valid": 1}}, // went to 4, route said 3
		{SW: 2, Headers: map[string]uint64{"sr_next": 2, "sr_valid": 1}},
	}
	if rej, _ := h.RunBoth(bad); !rej {
		t.Fatal("diverted packet must reject")
	}
}

// TestDiffFigure2LoadBalance runs the pedagogical Figure 2 program —
// telemetry arrays plus a lockstep multi-variable for loop in the
// checker — differentially, covering the loop-unrolling path.
func TestDiffFigure2LoadBalance(t *testing.T) {
	h := newHarness(t, checkers.LoadBalanceFig2Src)
	for _, id := range []uint32{1, 2} {
		h.InstallScalar(id, "left_port", 1)
		h.InstallScalar(id, "right_port", 2)
		h.InstallScalar(id, "thresh", 500)
		h.InstallDict(id, "is_uplink", []uint64{1}, 1)
		h.InstallDict(id, "is_uplink", []uint64{2}, 1)
	}
	// Build up imbalance on the left port; each trace snapshots the
	// loads at both hops, and once the difference exceeds the threshold
	// the checker's loop reports for every offending snapshot.
	var sawReport bool
	for i := 0; i < 4; i++ {
		_, reports := h.RunBoth([]hopSpec{
			{SW: 1, Headers: map[string]uint64{"eg_port": 1}, PktLen: 300},
			{SW: 2, Headers: map[string]uint64{"eg_port": 9}, PktLen: 300},
		})
		if len(reports) > 0 {
			sawReport = true
		}
	}
	if !sawReport {
		t.Fatal("figure 2 checker never reported the imbalance")
	}
}

func TestDiffLoadBalance(t *testing.T) {
	h := corpusHarness(t, "load-balance")
	for _, id := range []uint32{1, 2} {
		h.InstallScalar(id, "left_port", 1)
		h.InstallScalar(id, "right_port", 2)
		h.InstallScalar(id, "thresh", 500)
		h.InstallDict(id, "is_uplink", []uint64{1}, 1)
		h.InstallDict(id, "is_uplink", []uint64{2}, 1)
	}
	// Balanced: alternate packets across the two uplinks; the running
	// difference never exceeds the threshold.
	for i := 0; i < 4; i++ {
		port := uint64(1 + i%2)
		if _, reports := h.RunBoth([]hopSpec{
			{SW: 1, Headers: map[string]uint64{"eg_port": port}, PktLen: 400},
			{SW: 2, Headers: map[string]uint64{"eg_port": 9}, PktLen: 400},
		}); len(reports) != 0 {
			t.Fatalf("balanced load reported an imbalance: %v", reports)
		}
	}
	// Hammer the left port until the threshold trips.
	var reported bool
	for i := 0; i < 5; i++ {
		_, reports := h.RunBoth([]hopSpec{
			{SW: 1, Headers: map[string]uint64{"eg_port": 1}, PktLen: 400},
			{SW: 2, Headers: map[string]uint64{"eg_port": 9}, PktLen: 400},
		})
		if len(reports) > 0 {
			reported = true
		}
	}
	if !reported {
		t.Fatal("sustained imbalance never reported")
	}
}

func TestDiffAppFiltering(t *testing.T) {
	h := corpusHarness(t, "app-filtering")
	ue, app := uint64(0x0afa0001), uint64(0xc0a80505)
	const udp = 17
	// deny=1 for (ue, udp, app, 80), allow=2 for (ue, udp, app, 81)
	for _, id := range []uint32{1, 2} {
		h.InstallDict(id, "filtering_actions", []uint64{ue, udp, app, 80}, 1)
		h.InstallDict(id, "filtering_actions", []uint64{ue, udp, app, 81}, 2)
	}
	uplink := func(dport, dropped uint64) []hopSpec {
		hdrs := map[string]uint64{
			"inner_ipv4_is_valid": 1, "inner_udp_is_valid": 1, "inner_tcp_is_valid": 0,
			"ipv4_is_valid": 0, "tcp_is_valid": 0, "udp_is_valid": 0,
			"inner_ipv4_src": ue, "inner_ipv4_dst": app, "inner_ipv4_proto": udp,
			"inner_udp_dport": dport, "inner_tcp_dport": 0,
			"outer_ipv4_src": 0, "outer_ipv4_dst": 0, "outer_ipv4_proto": 0,
			"outer_tcp_sport": 0, "outer_udp_sport": 0,
			"to_be_dropped": dropped,
		}
		return []hopSpec{{SW: 1, Headers: hdrs}, {SW: 2, Headers: hdrs}}
	}

	// Denied app forwarded by the data plane: reject + report.
	rej, reports := h.RunBoth(uplink(80, 0))
	if !rej || len(reports) != 1 {
		t.Fatalf("deny violation: rej=%v reports=%v", rej, reports)
	}
	if reports[0][4] != 1 {
		t.Fatalf("report action = %d, want 1 (deny)", reports[0][4])
	}
	// Allowed app dropped by the data plane (the Figure 11 bug): report.
	rej, reports = h.RunBoth(uplink(81, 1))
	if rej || len(reports) != 1 {
		t.Fatalf("allow violation: rej=%v reports=%v", rej, reports)
	}
	if reports[0][4] != 2 {
		t.Fatalf("report action = %d, want 2 (allow)", reports[0][4])
	}
	// Allowed and forwarded: clean.
	rej, reports = h.RunBoth(uplink(81, 0))
	if rej || len(reports) != 0 {
		t.Fatalf("clean uplink: rej=%v reports=%v", rej, reports)
	}
	// Denied and dropped: data plane already enforcing, nothing to say.
	rej, reports = h.RunBoth(uplink(80, 1))
	if rej || len(reports) != 0 {
		t.Fatalf("enforced deny: rej=%v reports=%v", rej, reports)
	}
}

// TestDiffRandomTraces drives the multi-tenancy and loop-freedom
// checkers with randomized traces and states; both backends must agree
// on every packet.
func TestDiffRandomTraces(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}

	t.Run("multi-tenancy", func(t *testing.T) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			h := corpusHarness(t, "multi-tenancy")
			for id := uint32(1); id <= 3; id++ {
				for port := uint64(0); port < 8; port++ {
					h.InstallDict(id, "tenants", []uint64{port}, uint64(rng.Intn(3)))
				}
			}
			n := rng.Intn(4) + 1
			trace := make([]hopSpec, n)
			for i := range trace {
				trace[i] = hopSpec{
					SW: uint32(rng.Intn(3) + 1),
					Headers: map[string]uint64{
						"in_port": uint64(rng.Intn(8)),
						"eg_port": uint64(rng.Intn(8)),
					},
				}
			}
			h.RunBoth(trace) // RunBoth fails the test on divergence
			return true
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("loop-freedom", func(t *testing.T) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			h := corpusHarness(t, "loop-freedom")
			n := rng.Intn(6) + 1
			trace := make([]hopSpec, n)
			for i := range trace {
				trace[i] = hopSpec{SW: uint32(rng.Intn(4) + 1)}
			}
			h.RunBoth(trace)
			return true
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCompileCorpus compiles every corpus program and sanity-checks the
// generated IR shape.
func TestCompileCorpus(t *testing.T) {
	for _, p := range checkers.All {
		p := p
		t.Run(p.Key, func(t *testing.T) {
			info, err := p.Parse()
			if err != nil {
				t.Fatal(err)
			}
			prog, err := compiler.Compile(info, compiler.Options{Name: p.Key})
			if err != nil {
				t.Fatal(err)
			}
			// Each control var must be realized as a table, each sensor
			// as a register, each tele var as a telemetry field.
			if got, want := len(prog.Tables), len(info.Prog.DeclsOfKind(ast.KindControl)); got != want {
				t.Errorf("tables: got %d, want %d", got, want)
			}
			if got, want := len(prog.Registers), len(info.Prog.DeclsOfKind(ast.KindSensor)); got != want {
				t.Errorf("registers: got %d, want %d", got, want)
			}
			if got, want := len(prog.Tele), len(info.Prog.DeclsOfKind(ast.KindTele)); got != want {
				t.Errorf("tele fields: got %d, want %d", got, want)
			}
			if prog.TeleWireBits() <= 0 {
				t.Error("telemetry wire size must be positive")
			}
		})
	}
}

// TestPerHopChecking exercises the §4.3 variant: with CheckEveryHop the
// loop checker rejects as soon as the revisit happens, not only at the
// edge.
func TestPerHopChecking(t *testing.T) {
	info := checkers.MustParse("loop-freedom")
	prog, err := compiler.Compile(info, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := &compiler.Runtime{Prog: prog, CheckEveryHop: true}
	st := prog.NewState()

	var blob []byte
	// Hops: 1, 2, 1(loop!), 3 — with per-hop checking the third hop
	// already rejects.
	ids := []uint32{1, 2, 1, 3}
	var rejectedAt = -1
	for i, id := range ids {
		hr, err := rt.RunHop(blob, compiler.HopEnv{State: st, SwitchID: id, PacketLen: 100}, i == 0, i == len(ids)-1)
		if err != nil {
			t.Fatal(err)
		}
		blob = hr.Blob
		if hr.Reject && rejectedAt == -1 {
			rejectedAt = i
		}
	}
	if rejectedAt != 2 {
		t.Fatalf("per-hop checking rejected at hop %d, want 2", rejectedAt)
	}
}

// TestTelemetryBlobRoundTrip checks that the packed blob carries all
// telemetry faithfully between hops.
func TestTelemetryBlobRoundTrip(t *testing.T) {
	info := checkers.MustParse("source-routing")
	prog, err := compiler.Compile(info, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	phv := pipeline.PHV{}
	if err := prog.DecodeTele(nil, phv); err != nil {
		t.Fatal(err)
	}
	phv.Set(pipeline.FieldHops, pipeline.B(8, 3))
	phv.Set(pipeline.ArrayCount("hydra_header.actual_path"), pipeline.B(8, 2))
	phv.Set(pipeline.ArraySlot("hydra_header.actual_path", 0), pipeline.B(32, 0xdeadbeef))
	phv.Set(pipeline.ArraySlot("hydra_header.actual_path", 1), pipeline.B(32, 7))
	phv.Set(pipeline.FieldRef("hydra_header.mismatch"), pipeline.B(1, 1))

	blob := prog.EncodeTele(phv)
	phv2 := pipeline.PHV{}
	if err := prog.DecodeTele(blob, phv2); err != nil {
		t.Fatal(err)
	}
	for _, f := range []pipeline.FieldRef{
		pipeline.FieldHops,
		pipeline.ArrayCount("hydra_header.actual_path"),
		pipeline.ArraySlot("hydra_header.actual_path", 0),
		pipeline.ArraySlot("hydra_header.actual_path", 1),
		"hydra_header.mismatch",
	} {
		if phv.Get(f).V != phv2.Get(f).V {
			t.Errorf("field %s: %d != %d", f, phv.Get(f).V, phv2.Get(f).V)
		}
	}
	wantBits := prog.TeleWireBits()
	if len(blob) != (wantBits+7)/8 {
		t.Errorf("blob is %d bytes, want %d bits rounded up", len(blob), wantBits)
	}
}

// TestDiffDynamicArrayIndexing covers the runtime-indexed header-stack
// paths: a write through a variable index (SetSlotOp) and a read through
// a variable index (the unrolled mux chain of P4-16 conditionals).
func TestDiffDynamicArrayIndexing(t *testing.T) {
	src := `
tele bit<32>[4] xs;
tele bit<8> idx;
tele bit<32> got;
header bit<8> which;
{ }
{
  idx = which;
  xs[idx] = switch_id;
  got = xs[idx];
  xs[idx] += 1;
}
{
  if (xs[2] == 0 && got == 0) { reject; }
}
`
	h := newHarness(t, src)
	for _, which := range []uint64{0, 1, 2, 3, 7} { // 7 is out of range: dropped write, zero read
		h.RunBoth([]hopSpec{
			{SW: 5, Headers: map[string]uint64{"which": which}},
			{SW: 6, Headers: map[string]uint64{"which": which}},
		})
	}
}

// TestDiffHopCountInInit pins the init-block hop_count semantics: the
// init block runs before the telemetry block's increment, so the
// compiler reads hop_count+1 there to match the interpreter.
func TestDiffHopCountInInit(t *testing.T) {
	src := `
tele bit<8> at_init;
tele bit<8> at_tele;
tele bit<8> at_check;
{ at_init = hop_count; }
{ at_tele = hop_count; }
{ at_check = hop_count; }
`
	h := newHarness(t, src)
	_, _ = h.RunBoth([]hopSpec{{SW: 1}, {SW: 2}, {SW: 3}})

	// And the concrete values: init sees 1, last telemetry/checker see 3.
	info := h.Info()
	m := eval.New(info)
	out, err := m.RunTrace([]eval.Hop{
		{Switch: eval.NewSwitchState(1), PacketLen: 1},
		{Switch: eval.NewSwitchState(2), PacketLen: 1},
		{Switch: eval.NewSwitchState(3), PacketLen: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Tele["at_init"].Equal(eval.NewBit(8, 1)) {
		t.Fatalf("at_init = %v, want 1", out.Tele["at_init"])
	}
	if !out.Tele["at_tele"].Equal(eval.NewBit(8, 3)) || !out.Tele["at_check"].Equal(eval.NewBit(8, 3)) {
		t.Fatalf("at_tele/at_check = %v/%v, want 3/3", out.Tele["at_tele"], out.Tele["at_check"])
	}
}

// TestAlignedTelemetryEncoding pins the DESIGN.md ablation: the aligned
// encoding round-trips identically to the packed one but costs more
// wire bytes whenever a program carries sub-byte or odd-width fields.
func TestAlignedTelemetryEncoding(t *testing.T) {
	info := checkers.MustParse("valley-free") // two booleans: 10 bits packed
	packed := compiler.MustCompile(info, compiler.Options{Name: "vf"})
	aligned := compiler.MustCompile(info, compiler.Options{Name: "vf", AlignedTele: true})

	if p, a := packed.TeleWireBits(), aligned.TeleWireBits(); a <= p {
		t.Fatalf("aligned (%d bits) should exceed packed (%d bits)", a, p)
	}

	// Differential run under the aligned encoding: verdicts unchanged.
	rtA := &compiler.Runtime{Prog: aligned}
	stA := aligned.NewState()
	if err := stA.Tables["is_spine_switch"].Insert(pipeline.Entry{
		Action: []pipeline.Value{pipeline.B(1, 1)},
	}); err != nil {
		t.Fatal(err)
	}
	// Two spine hops on the same (spine-configured) state: reject.
	res, err := rtA.RunTrace([]compiler.HopEnv{
		{State: stA, SwitchID: 3, PacketLen: 100},
		{State: stA, SwitchID: 4, PacketLen: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject {
		t.Fatal("aligned encoding changed the verdict")
	}

	// Blob round trip under alignment.
	phv := pipeline.PHV{}
	if err := aligned.DecodeTele(nil, phv); err != nil {
		t.Fatal(err)
	}
	phv.Set(pipeline.FieldHops, pipeline.B(8, 2))
	phv.Set(pipeline.FieldRef("hydra_header.visited_spine"), pipeline.B(1, 1))
	blob := aligned.EncodeTele(phv)
	if len(blob) != (aligned.TeleWireBits()+7)/8 {
		t.Fatalf("aligned blob is %d bytes, want %d bits rounded up", len(blob), aligned.TeleWireBits())
	}
	phv2 := pipeline.PHV{}
	if err := aligned.DecodeTele(blob, phv2); err != nil {
		t.Fatal(err)
	}
	if phv2.Get("hydra_header.visited_spine").V != 1 || phv2.Get(pipeline.FieldHops).V != 2 {
		t.Fatal("aligned round trip lost fields")
	}
}
