// Package pipeline models an executable match-action pipeline in the
// style of a P4 target: PHV fields, match-action tables (exact, LPM,
// ternary, range, with priorities), registers, header stacks, and a
// small structured-op interpreter.
//
// It serves two roles in the reproduction:
//
//   - it is the execution target of the Indus compiler — the compiled
//     checker runs here exactly as the emitted P4 would run on a switch;
//   - it is the substrate for forwarding programs themselves (the Aether
//     UPF's Applications/Terminations tables of Figure 11 are pipeline
//     tables), so checking and forwarding share one machine model while
//     remaining independent programs, as §2 argues they must.
package pipeline

import (
	"fmt"
	"sync"
)

// Value is a bit<Width> PHV value; booleans are width-1 values.
type Value struct {
	W int
	V uint64
}

// B returns a width-w value, masking v.
func B(w int, v uint64) Value { return Value{W: w, V: Mask(w, v)} }

// BoolV returns a 1-bit value from a Go bool.
func BoolV(b bool) Value {
	if b {
		return Value{W: 1, V: 1}
	}
	return Value{W: 1}
}

// Mask truncates v to w bits.
func Mask(w int, v uint64) uint64 {
	if w >= 64 {
		return v
	}
	return v & (1<<uint(w) - 1)
}

// Bool interprets the value as a boolean (nonzero = true).
func (v Value) Bool() bool { return v.V != 0 }

// Signed interprets the value as a two's-complement W-bit integer.
func (v Value) Signed() int64 {
	if v.W < 64 && v.V&(1<<uint(v.W-1)) != 0 {
		return int64(v.V) - 1<<uint(v.W)
	}
	return int64(v.V)
}

func (v Value) String() string { return fmt.Sprintf("%d:bit<%d>", v.V, v.W) }

// FieldRef names a PHV field, e.g. "hydra_header.tenant" or
// "hdr.ipv4.src_addr". Array slots use the "<name>.<index>" convention
// and the valid-count field is "<name>.$count".
type FieldRef string

// slotCache memoizes slot FieldRefs: DecodeTele/EncodeTele and the
// header-stack ops resolve them on every packet, so the fmt-based
// construction must not run on the hot path.
var slotCache sync.Map // string -> []FieldRef

// ArraySlot returns the FieldRef of slot i of array base.
func ArraySlot(base string, i int) FieldRef {
	if v, ok := slotCache.Load(base); ok {
		if refs := v.([]FieldRef); i < len(refs) {
			return refs[i]
		}
	}
	n := i + 8
	refs := make([]FieldRef, n)
	for j := 0; j < n; j++ {
		refs[j] = FieldRef(fmt.Sprintf("%s.%d", base, j))
	}
	slotCache.Store(base, refs)
	return refs[i]
}

// ArrayCount returns the FieldRef of the valid-element counter of base.
func ArrayCount(base string) FieldRef { return FieldRef(base + ".$count") }

// PHV is the packet header vector: every field the program references,
// including telemetry header fields, metadata, and bound forwarding
// headers.
type PHV map[FieldRef]Value

// Get returns the field value; reading an unset field yields a zero of
// width 0 (arith ops adopt the partner's width), matching P4's
// zero-initialized metadata.
func (p PHV) Get(f FieldRef) Value { return p[f] }

// Set writes the field.
func (p PHV) Set(f FieldRef, v Value) { p[f] = v }

// Clone returns a copy of the PHV.
func (p PHV) Clone() PHV {
	q := make(PHV, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}
