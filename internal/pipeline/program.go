package pipeline

import (
	"fmt"

	"repro/internal/dataplane"
)

// TableSpec declares a table in a compiled program; each switch that
// runs the program instantiates its own Table from the spec.
type TableSpec struct {
	Name    string
	Keys    []KeySpec
	Outputs []FieldRef
	// OutputWidths gives the bit width of each output field.
	OutputWidths []int
	Default      []Value
}

// RegisterSpec declares a register array (an Indus sensor variable).
type RegisterSpec struct {
	Name  string
	Width int
	Size  int
}

// TeleField describes one packet-carried telemetry field, in wire order.
// Arrays serialize as an 8-bit valid count followed by Cap slots.
type TeleField struct {
	Name    string
	Width   int
	IsArray bool
	Cap     int
}

// WireBits returns the serialized size of the field in bits.
func (f TeleField) WireBits() int {
	if f.IsArray {
		return 8 + f.Cap*f.Width
	}
	return f.Width
}

// Program is a compiled Indus checker in pipeline IR: three op blocks
// (init, telemetry, checker), plus the resources they reference.
type Program struct {
	Name      string
	Tables    []TableSpec
	Registers []RegisterSpec
	Tele      []TeleField

	// AlignedTele selects the byte-aligned telemetry encoding: every
	// field starts on a byte boundary (cheaper to parse on devices
	// without shift-heavy deparsers, larger on the wire). The default
	// is the packed encoding the compiled deparser emits.
	AlignedTele bool

	Init      []Op
	Telemetry []Op
	Checker   []Op

	// HeaderBindings maps Indus header variable names to the annotation
	// paths the forwarding substrate binds (e.g. "hdr.ipv4.src_addr").
	HeaderBindings map[string]string
}

// Well-known PHV fields of compiled programs.
const (
	FieldReject  FieldRef = "hydra_metadata.reject0" // Figure 6's reject flag
	FieldLastHop FieldRef = "hydra_metadata.last_hop"
	FieldFirst   FieldRef = "hydra_metadata.first_hop"
	FieldPktLen  FieldRef = "standard_metadata.packet_length"
	FieldSwitch  FieldRef = "hydra_metadata.switch_id"
	FieldHops    FieldRef = "hydra_header.hop_count"
)

// TeleWireBits returns the total telemetry payload size in bits
// (excluding the fixed Hydra header framing).
func (p *Program) TeleWireBits() int {
	n := 8 // hop_count rides with every program
	for _, f := range p.Tele {
		if p.AlignedTele {
			n += f.WireBitsAligned()
		} else {
			n += f.WireBits()
		}
	}
	return n
}

// WireBitsAligned is the field's size under the byte-aligned encoding.
func (f TeleField) WireBitsAligned() int {
	elem := (f.Width + 7) / 8 * 8
	if f.IsArray {
		return 8 + f.Cap*elem
	}
	return elem
}

// State is the per-switch instantiation of a program's tables and
// registers. The control plane holds the same *Table pointers and
// updates them concurrently with forwarding.
type State struct {
	Tables    map[string]*Table
	Registers map[string]*Register

	// tableList and regList hold the same pointers in Program.Tables /
	// Program.Registers declaration order, so the linked executor can
	// resolve resources by index instead of hashing names per packet.
	// Hand-built States (tests) may leave them nil; the linked ops fall
	// back to the maps then.
	tableList []*Table
	regList   []*Register
}

// NewState instantiates the program's resources for one switch.
func (p *Program) NewState() *State {
	st := &State{
		Tables:    make(map[string]*Table, len(p.Tables)),
		Registers: make(map[string]*Register, len(p.Registers)),
		tableList: make([]*Table, 0, len(p.Tables)),
		regList:   make([]*Register, 0, len(p.Registers)),
	}
	for _, ts := range p.Tables {
		t := NewTable(ts.Name, ts.Keys, ts.Outputs, ts.Default)
		st.Tables[ts.Name] = t
		st.tableList = append(st.tableList, t)
	}
	for _, rs := range p.Registers {
		r := NewRegister(rs.Name, rs.Width, rs.Size)
		st.Registers[rs.Name] = r
		st.regList = append(st.regList, r)
	}
	return st
}

// Warm eagerly rebuilds every exact table's lock-free read snapshot
// (see Table.WarmSnapshot), so a batch of control-plane installs is
// paid for on the control path instead of by the first packet.
func (s *State) Warm() {
	for _, t := range s.Tables {
		t.WarmSnapshot()
	}
}

// tableAt resolves a table by declaration index, falling back to the
// name map for hand-built States.
func (s *State) tableAt(i int, name string) *Table {
	if i < len(s.tableList) {
		return s.tableList[i]
	}
	return s.Tables[name]
}

// regAt resolves a register by declaration index, falling back to the
// name map for hand-built States.
func (s *State) regAt(i int, name string) *Register {
	if i < len(s.regList) {
		return s.regList[i]
	}
	return s.Registers[name]
}

// TableAt resolves a table by declaration index with a name-map
// fallback; exported for out-of-package executors (the bytecode VM).
func (s *State) TableAt(i int, name string) *Table { return s.tableAt(i, name) }

// RegisterAt resolves a register by declaration index with a name-map
// fallback; exported for out-of-package executors (the bytecode VM).
func (s *State) RegisterAt(i int, name string) *Register { return s.regAt(i, name) }

// ---------------------------------------------------------------------------
// Telemetry wire codec

// EncodeTele packs the program's telemetry fields from the PHV into a
// Hydra blob (packed MSB-first, the compiled deparser's layout).
func (p *Program) EncodeTele(phv PHV) []byte {
	w := dataplane.NewBitWriter()
	w.Grow(p.TeleWireBits())
	w.WriteBits(phv.Get(FieldHops).V, 8)
	for _, f := range p.Tele {
		if f.IsArray {
			w.WriteBits(phv.Get(ArrayCount(f.Name)).V, 8)
			for i := 0; i < f.Cap; i++ {
				w.WriteBits(phv.Get(ArraySlot(f.Name, i)).V, f.Width)
				if p.AlignedTele {
					w.Align()
				}
			}
			continue
		}
		w.WriteBits(phv.Get(FieldRef(f.Name)).V, f.Width)
		if p.AlignedTele {
			w.Align()
		}
	}
	return w.Bytes()
}

// DecodeTele unpacks a Hydra blob into the PHV. An empty blob (first
// hop, before injection) leaves the PHV zero-filled.
func (p *Program) DecodeTele(blob []byte, phv PHV) error {
	if len(blob) == 0 {
		phv.Set(FieldHops, B(8, 0))
		for _, f := range p.Tele {
			if f.IsArray {
				phv.Set(ArrayCount(f.Name), B(8, 0))
				for i := 0; i < f.Cap; i++ {
					phv.Set(ArraySlot(f.Name, i), B(f.Width, 0))
				}
				continue
			}
			phv.Set(FieldRef(f.Name), B(f.Width, 0))
		}
		return nil
	}
	r := dataplane.NewBitReader(blob)
	hops, err := r.ReadBits(8)
	if err != nil {
		return fmt.Errorf("pipeline: telemetry blob: %w", err)
	}
	phv.Set(FieldHops, B(8, hops))
	for _, f := range p.Tele {
		if f.IsArray {
			cnt, err := r.ReadBits(8)
			if err != nil {
				return fmt.Errorf("pipeline: telemetry field %s: %w", f.Name, err)
			}
			phv.Set(ArrayCount(f.Name), B(8, cnt))
			for i := 0; i < f.Cap; i++ {
				v, err := r.ReadBits(f.Width)
				if err != nil {
					return fmt.Errorf("pipeline: telemetry field %s[%d]: %w", f.Name, i, err)
				}
				phv.Set(ArraySlot(f.Name, i), B(f.Width, v))
				if p.AlignedTele {
					r.Align()
				}
			}
			continue
		}
		v, err := r.ReadBits(f.Width)
		if err != nil {
			return fmt.Errorf("pipeline: telemetry field %s: %w", f.Name, err)
		}
		phv.Set(FieldRef(f.Name), B(f.Width, v))
		if p.AlignedTele {
			r.Align()
		}
	}
	return nil
}
