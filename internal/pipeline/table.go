package pipeline

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// MatchKind is how one key column of a table matches.
type MatchKind int

// Match kinds. Exact-only tables take a hash-map fast path; any other
// kind makes the table a priority-ordered (TCAM-style) table.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
	MatchRange
)

func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	case MatchTernary:
		return "ternary"
	case MatchRange:
		return "range"
	}
	return fmt.Sprintf("MatchKind(%d)", int(k))
}

// KeySpec describes one key column.
type KeySpec struct {
	Name  string
	Width int
	Kind  MatchKind
}

// KeyMatch is one entry's matcher for one key column.
type KeyMatch struct {
	// Exact / LPM / Ternary value.
	Value uint64
	// LPM prefix length in bits; Ternary mask; Range high bound.
	Aux uint64
	// Any matches everything (ternary with zero mask, or an explicit
	// wildcard in any column kind).
	Any bool
}

// ExactKey returns a matcher for an exact value.
func ExactKey(v uint64) KeyMatch { return KeyMatch{Value: v} }

// PrefixKey returns an LPM matcher for value/plen.
func PrefixKey(v uint64, plen int) KeyMatch { return KeyMatch{Value: v, Aux: uint64(plen)} }

// RangeKey returns a matcher for lo..hi inclusive.
func RangeKey(lo, hi uint64) KeyMatch { return KeyMatch{Value: lo, Aux: hi} }

// TernaryKey returns a value&mask matcher.
func TernaryKey(v, mask uint64) KeyMatch { return KeyMatch{Value: v, Aux: mask} }

// AnyKey returns a wildcard matcher.
func AnyKey() KeyMatch { return KeyMatch{Any: true} }

func (m KeyMatch) matches(kind MatchKind, width int, v uint64) bool {
	if m.Any {
		return true
	}
	switch kind {
	case MatchExact:
		return v == m.Value
	case MatchLPM:
		plen := int(m.Aux)
		if plen <= 0 {
			return true
		}
		if plen >= width {
			return v == m.Value
		}
		shift := uint(width - plen)
		return v>>shift == m.Value>>shift
	case MatchTernary:
		return v&m.Aux == m.Value&m.Aux
	case MatchRange:
		return m.Value <= v && v <= m.Aux
	}
	return false
}

// specificity orders LPM entries when priorities tie: longer prefixes win.
func (m KeyMatch) specificity(kind MatchKind) int {
	if m.Any {
		return 0
	}
	if kind == MatchLPM {
		return int(m.Aux)
	}
	return 1
}

// MaxPackedKeys is the widest key (in columns) the allocation-free
// packed lookup path supports; tables with more exact columns fall back
// to a string-keyed map.
const MaxPackedKeys = 4

// PackedKey is a table lookup key packed into a fixed array so the hot
// path can build it on the stack and hash it without allocation.
// Columns beyond the table's key count must be zero.
type PackedKey [MaxPackedKeys]uint64

// Entry is one table entry: matchers for each key column, a priority
// (higher wins; TCAM-style tables only), and the action data written to
// the table's output fields on a hit.
type Entry struct {
	Keys     []KeyMatch
	Priority int
	Action   []Value
	// Name optionally labels the action for P4 output and debugging.
	Name string

	// match is the entry's compiled matcher, specialized per column
	// kind at insert time (TCAM tables with <= MaxPackedKeys columns).
	match func(PackedKey) bool
}

// Table is a match-action table. Outputs lists the PHV fields the action
// data is written to, in order; on a miss the Default action data is
// written instead, and the table's hit field (Name + ".$hit") is set to
// 0. The entry store is safe for concurrent control-plane updates.
type Table struct {
	Name    string
	Keys    []KeySpec
	Outputs []FieldRef
	Default []Value

	mu sync.RWMutex
	// packed is the allocation-free fast path: all-exact tables with at
	// most MaxPackedKeys columns.
	packed map[PackedKey]*Entry
	// snap is an immutable snapshot of packed, published atomically and
	// invalidated (stored nil) by every mutation. Readers that find it
	// non-nil look up without taking mu at all — the snapshot is never
	// written after publication, so concurrent reads are safe; the
	// first reader after a mutation rebuilds it under the write lock.
	// Control-plane installs are rare and batchy, so the O(n) rebuild
	// amortizes to nothing while the per-packet path drops from two
	// RWMutex atomics to one pointer load. The snapshot is a flat
	// open-addressing table rather than a Go map: the key array is
	// pointer-free (cheap for the GC) and the multiply-xor hash is a
	// fraction of the runtime map's 32-byte memhash + bucket protocol.
	snap atomic.Pointer[packedSnap]
	// exact is the fallback for exact tables with more columns than
	// PackedKey holds (string-encoded keys).
	exact   map[string]*Entry
	entries []*Entry // TCAM path, kept sorted by priority desc
	isExact bool
	// version increments on every mutation; read without the lock
	// (atomically) so per-shard lookup caches can validate cheaply.
	version atomic.Uint64
}

// NewTable creates an empty table. All-exact key columns select the
// hash-map fast path.
func NewTable(name string, keys []KeySpec, outputs []FieldRef, def []Value) *Table {
	t := &Table{Name: name, Keys: keys, Outputs: outputs, Default: def, isExact: true}
	for _, k := range keys {
		if k.Kind != MatchExact {
			t.isExact = false
		}
	}
	if t.isExact {
		if len(keys) <= MaxPackedKeys {
			t.packed = make(map[PackedKey]*Entry)
		} else {
			t.exact = make(map[string]*Entry)
		}
	}
	return t
}

// IsExact reports whether the table takes the exact-match fast path.
func (t *Table) IsExact() bool { return t.isExact }

// HitField is the PHV field recording whether the last apply hit.
func (t *Table) HitField() FieldRef { return FieldRef(t.Name + ".$hit") }

func exactKeyString(keys []KeyMatch) string {
	buf := make([]byte, 0, 24*len(keys))
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, '|')
		}
		buf = strconv.AppendUint(buf, k.Value, 10)
	}
	return string(buf)
}

func packEntryKeys(keys []KeyMatch) PackedKey {
	var k PackedKey
	for i, m := range keys {
		k[i] = m.Value
	}
	return k
}

// compileMatcher specializes an entry's per-column matchers by kind at
// insert time, so TCAM lookups run one closure per entry instead of
// re-dispatching on MatchKind for every column of every entry.
func (t *Table) compileMatcher(keys []KeyMatch) func(PackedKey) bool {
	if len(keys) > MaxPackedKeys {
		return nil
	}
	cols := make([]func(uint64) bool, 0, len(keys))
	idx := make([]int, 0, len(keys))
	for i, m := range keys {
		if m.Any {
			continue // wildcard columns match everything: no test at all
		}
		m := m
		var f func(uint64) bool
		switch t.Keys[i].Kind {
		case MatchExact:
			f = func(v uint64) bool { return v == m.Value }
		case MatchLPM:
			plen := int(m.Aux)
			switch {
			case plen <= 0:
				continue
			case plen >= t.Keys[i].Width:
				f = func(v uint64) bool { return v == m.Value }
			default:
				shift := uint(t.Keys[i].Width - plen)
				want := m.Value >> shift
				f = func(v uint64) bool { return v>>shift == want }
			}
		case MatchTernary:
			want := m.Value & m.Aux
			f = func(v uint64) bool { return v&m.Aux == want }
		case MatchRange:
			f = func(v uint64) bool { return m.Value <= v && v <= m.Aux }
		default:
			return nil
		}
		cols = append(cols, f)
		idx = append(idx, i)
	}
	return func(k PackedKey) bool {
		for j, f := range cols {
			if !f(k[idx[j]]) {
				return false
			}
		}
		return true
	}
}

// Insert adds or replaces an entry. For exact tables, replacement is by
// key; for TCAM tables an identical (keys, priority) entry is replaced.
func (t *Table) Insert(e Entry) error {
	if len(e.Keys) != len(t.Keys) {
		return fmt.Errorf("table %s: entry has %d keys, want %d", t.Name, len(e.Keys), len(t.Keys))
	}
	if len(e.Action) != len(t.Outputs) {
		return fmt.Errorf("table %s: entry has %d action values, want %d", t.Name, len(e.Action), len(t.Outputs))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.version.Add(1)
	t.snap.Store(nil)
	if t.isExact {
		for i, k := range e.Keys {
			if k.Any {
				return fmt.Errorf("table %s: wildcard key in exact-match column %d", t.Name, i)
			}
		}
		if t.packed != nil {
			t.packed[packEntryKeys(e.Keys)] = &e
		} else {
			t.exact[exactKeyString(e.Keys)] = &e
		}
		return nil
	}
	e.match = t.compileMatcher(e.Keys)
	for i, old := range t.entries {
		if old.Priority == e.Priority && sameKeys(old.Keys, e.Keys) {
			t.entries[i] = &e
			return nil
		}
	}
	t.entries = append(t.entries, &e)
	sort.SliceStable(t.entries, func(i, j int) bool {
		if t.entries[i].Priority != t.entries[j].Priority {
			return t.entries[i].Priority > t.entries[j].Priority
		}
		// Tie-break by total specificity so LPM behaves as expected
		// without explicit priorities.
		return t.specificityLocked(t.entries[i]) > t.specificityLocked(t.entries[j])
	})
	return nil
}

func (t *Table) specificityLocked(e *Entry) int {
	s := 0
	for i, k := range e.Keys {
		s += k.specificity(t.Keys[i].Kind)
	}
	return s
}

func sameKeys(a, b []KeyMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Delete removes entries whose keys equal the given matchers; it returns
// the number removed.
func (t *Table) Delete(keys []KeyMatch) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.version.Add(1)
	t.snap.Store(nil)
	if t.isExact {
		if t.packed != nil {
			k := packEntryKeys(keys)
			if _, ok := t.packed[k]; ok {
				delete(t.packed, k)
				return 1
			}
			return 0
		}
		k := exactKeyString(keys)
		if _, ok := t.exact[k]; ok {
			delete(t.exact, k)
			return 1
		}
		return 0
	}
	n := 0
	kept := t.entries[:0]
	for _, e := range t.entries {
		if sameKeys(e.Keys, keys) {
			n++
			continue
		}
		kept = append(kept, e)
	}
	t.entries = kept
	return n
}

// Clear removes all entries.
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.version.Add(1)
	t.snap.Store(nil)
	if t.isExact {
		if t.packed != nil {
			t.packed = make(map[PackedKey]*Entry)
		} else {
			t.exact = make(map[string]*Entry)
		}
	}
	t.entries = nil
}

// Len returns the number of installed entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.isExact {
		if t.packed != nil {
			return len(t.packed)
		}
		return len(t.exact)
	}
	return len(t.entries)
}

// Version increments on every mutation. It is read without taking the
// table lock, so per-shard lookup caches (and control-plane race
// detection in tests) can poll it cheaply.
func (t *Table) Version() uint64 { return t.version.Load() }

// Lookup matches the key values and returns the action data and whether
// the lookup hit; on a miss the default action data is returned.
func (t *Table) Lookup(vals []uint64) ([]Value, bool) {
	if t.isExact && t.packed != nil && len(vals) <= MaxPackedKeys {
		var k PackedKey
		copy(k[:], vals)
		return t.LookupPacked(k)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.isExact {
		// Fallback string path (> MaxPackedKeys exact columns). The key
		// bytes are built in a stack buffer and converted only inside
		// the map index expression, which the compiler optimizes to a
		// no-copy lookup — no heap allocation either way.
		var scratch [96]byte
		buf := scratch[:0]
		for i, v := range vals {
			if i > 0 {
				buf = append(buf, '|')
			}
			buf = strconv.AppendUint(buf, v, 10)
		}
		if e, ok := t.exact[string(buf)]; ok {
			return e.Action, true
		}
		return t.Default, false
	}
	var k PackedKey
	if len(vals) <= MaxPackedKeys {
		copy(k[:], vals)
	}
	for _, e := range t.entries {
		if e.match != nil {
			if e.match(k) {
				return e.Action, true
			}
			continue
		}
		hit := true
		for i, km := range e.Keys {
			if !km.matches(t.Keys[i].Kind, t.Keys[i].Width, vals[i]) {
				hit = false
				break
			}
		}
		if hit {
			return e.Action, true
		}
	}
	return t.Default, false
}

// packedSnap is the immutable lock-free read structure for exact
// tables: open addressing with linear probing at <= 50% load. Probes
// walk a dense one-byte-per-slot control array first (0 = empty,
// otherwise the top hash bits with the high bit set), so an empty or
// mismatching slot usually costs one L1 touch instead of pulling the
// 40-byte slot in from DRAM; the slot itself is only loaded when its
// control byte matches. Actions live back-to-back in one shared
// backing array, so the hit's action read lands next to its
// neighbours instead of on a private heap object.
type packedSnap struct {
	mask  uint64
	ctrl  []uint8
	slots []packedSlot
	acts  []Value
}

// packedSlot is a key plus the half-open [off, off+n) range of the
// snapshot's action backing array. keys and offsets carry no pointers,
// so GC scans only the two top-level slices.
type packedSlot struct {
	key    PackedKey
	off, n uint32
}

// emptyAction is the non-nil stand-in for occupied slots whose action
// list is empty.
var emptyAction = []Value{}

// hashPacked mixes the four key words with distinct odd multipliers;
// good enough dispersion for addresses/ports/IDs at half load. The low
// bits pick the slot, the high bits feed the control byte — the two
// are effectively independent.
func hashPacked(k PackedKey) uint64 {
	h := k[0]*0x9e3779b97f4a7c15 ^ k[1]*0xbf58476d1ce4e5b9 ^
		k[2]*0x94d049bb133111eb ^ k[3]*0x2545f4914f6cdd1d
	return h ^ h>>29
}

func (s *packedSnap) lookup(k PackedKey) ([]Value, bool) {
	h := hashPacked(k)
	want := uint8(h>>56) | 0x80
	i := h & s.mask
	for {
		c := s.ctrl[i]
		if c == 0 {
			return nil, false
		}
		if c == want {
			if sl := &s.slots[i]; sl.key == k {
				if sl.n == 0 {
					return emptyAction, true
				}
				return s.acts[sl.off : sl.off+sl.n : sl.off+sl.n], true
			}
		}
		i = (i + 1) & s.mask
	}
}

func buildPackedSnap(packed map[PackedKey]*Entry) *packedSnap {
	size := uint64(8)
	for size < uint64(len(packed))*2 {
		size *= 2
	}
	s := &packedSnap{
		mask:  size - 1,
		ctrl:  make([]uint8, size),
		slots: make([]packedSlot, size),
	}
	for k, e := range packed {
		h := hashPacked(k)
		i := h & s.mask
		for s.ctrl[i] != 0 {
			i = (i + 1) & s.mask
		}
		s.ctrl[i] = uint8(h>>56) | 0x80
		s.slots[i] = packedSlot{
			key: k,
			off: uint32(len(s.acts)),
			n:   uint32(len(e.Action)),
		}
		s.acts = append(s.acts, e.Action...)
	}
	return s
}

// LookupPacked is the allocation-free lookup the linked and bytecode
// executors use: the key is passed by value in a fixed array, so
// nothing escapes to the heap. Exact tables serve hits from the
// immutable snapshot without touching the lock. It supports tables with
// at most MaxPackedKeys columns (unused columns zero); wider tables
// must go through Lookup.
func (t *Table) LookupPacked(k PackedKey) ([]Value, bool) {
	if s := t.snap.Load(); s != nil {
		if a, ok := s.lookup(k); ok {
			return a, true
		}
		return t.Default, false
	}
	return t.lookupPackedSlow(k)
}

// lookupPackedSlow is the locked path: TCAM tables always land here;
// exact tables land here only right after a mutation, rebuilding the
// read snapshot for every subsequent lookup.
func (t *Table) lookupPackedSlow(k PackedKey) ([]Value, bool) {
	if t.packed != nil {
		t.mu.Lock()
		s := t.snap.Load()
		if s == nil {
			s = buildPackedSnap(t.packed)
			t.snap.Store(s)
		}
		t.mu.Unlock()
		if a, ok := s.lookup(k); ok {
			return a, true
		}
		return t.Default, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, e := range t.entries {
		if e.match != nil && e.match(k) {
			return e.Action, true
		}
	}
	return t.Default, false
}

// Entries returns a snapshot of the installed entries (TCAM order for
// TCAM tables; unspecified order for exact tables).
func (t *Table) Entries() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.isExact {
		if t.packed != nil {
			out := make([]Entry, 0, len(t.packed))
			for _, e := range t.packed {
				out = append(out, *e)
			}
			return out
		}
		out := make([]Entry, 0, len(t.exact))
		for _, e := range t.exact {
			out = append(out, *e)
		}
		return out
	}
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, *e)
	}
	return out
}

// Register is a P4-style register array holding Size cells of Width
// bits. Cells are accessed with word atomics rather than a mutex: each
// Read/Write was already individually atomic under the old lock (the
// executors never hold it across a read-modify-write sequence), so
// per-cell atomic load/store preserves the exact observable semantics
// while removing two lock RMWs from every register op on the hot path.
type Register struct {
	Name  string
	Width int
	Size  int

	cells []uint64
}

// NewRegister allocates a zeroed register array.
func NewRegister(name string, width, size int) *Register {
	return &Register{Name: name, Width: width, Size: size, cells: make([]uint64, size)}
}

// Read returns cell i (zero for out-of-range reads, as on hardware).
func (r *Register) Read(i int) uint64 {
	if i < 0 || i >= len(r.cells) {
		return 0
	}
	return atomic.LoadUint64(&r.cells[i])
}

// Write stores v (masked to the register width) into cell i; writes out
// of range are dropped.
func (r *Register) Write(i int, v uint64) {
	if i < 0 || i >= len(r.cells) {
		return
	}
	atomic.StoreUint64(&r.cells[i], Mask(r.Width, v))
}

// Reset zeroes all cells.
func (r *Register) Reset() {
	for i := range r.cells {
		atomic.StoreUint64(&r.cells[i], 0)
	}
}

// WarmSnapshot eagerly (re)builds the lock-free read snapshot after a
// batch of control-plane mutations, so the first packet after an
// install doesn't pay the O(n) rebuild on the data path. It is a no-op
// for TCAM tables and for exact tables whose snapshot is current.
func (t *Table) WarmSnapshot() {
	if t.packed == nil {
		return
	}
	t.mu.Lock()
	if t.snap.Load() == nil {
		t.snap.Store(buildPackedSnap(t.packed))
	}
	t.mu.Unlock()
}
