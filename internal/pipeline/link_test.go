package pipeline

import (
	"bytes"
	"testing"
)

// linkTestProg builds a hand-written IR program that exercises every op
// and expression form the linker compiles: exact tables (packed-key
// path), ternary/range tables (cached TCAM path), a >MaxPackedKeys
// exact table (generic fallback), registers, header-stack push and
// indexed writes, static array-slot references (in range and beyond
// capacity), unset-field width semantics, mux, unaries, and reports.
func linkTestProg() *Program {
	fx := Field{Ref: "hdr.x", Width: 32}
	fy := Field{Ref: "hdr.y", Width: 16}
	acc := Field{Ref: "hydra_header.acc", Width: 12}
	return &Program{
		Name: "link-test",
		Tables: []TableSpec{
			{
				Name:    "t_exact",
				Keys:    []KeySpec{{Name: "x", Width: 32}, {Name: "y", Width: 16}},
				Outputs: []FieldRef{"ctrl.ex_out"}, OutputWidths: []int{16},
				Default: []Value{B(16, 0x0BEE)},
			},
			{
				Name: "t_acl",
				Keys: []KeySpec{
					{Name: "x", Width: 32, Kind: MatchTernary},
					{Name: "y", Width: 16, Kind: MatchRange},
				},
				Outputs: []FieldRef{"ctrl.acl"}, OutputWidths: []int{8},
				Default: []Value{B(8, 0)},
			},
			{
				Name: "t_wide",
				Keys: []KeySpec{
					{Width: 8}, {Width: 8}, {Width: 8}, {Width: 8}, {Width: 8},
				},
				Outputs: []FieldRef{"ctrl.wide"}, OutputWidths: []int{8},
				Default: []Value{B(8, 1)},
			},
		},
		Registers: []RegisterSpec{{Name: "r", Width: 32, Size: 4}},
		Tele: []TeleField{
			{Name: "hydra_header.acc", Width: 12},
			{Name: "hydra_header.path", Width: 9, IsArray: true, Cap: 3},
		},
		HeaderBindings: map[string]string{"x": "hdr.x", "y": "hdr.y"},
		Init: []Op{
			AssignOp{Dst: "hydra_header.acc", DstWidth: 12, Src: C(12, 5)},
		},
		Telemetry: []Op{
			ApplyOp{Table: "t_exact", Keys: []Expr{fx, fy}},
			AssignOp{Dst: "hydra_header.acc", DstWidth: 12,
				Src: Bin{Op: OpAdd, X: acc, Y: Field{Ref: "ctrl.ex_out", Width: 16}}},
			PushOp{Base: "hydra_header.path", ElemWidth: 9, Cap: 3, Src: Field{Ref: FieldSwitch, Width: 32}},
			IfOp{
				Cond: Bin{Op: OpGt, X: acc, Y: C(12, 100)},
				Then: []Op{SetSlotOp{Base: "hydra_header.path", ElemWidth: 9, Cap: 3, Index: C(2, 0), Src: acc}},
				Else: []Op{RegWriteOp{Reg: "r", Index: Bin{Op: OpMod, X: Field{Ref: FieldHops, Width: 8}, Y: C(8, 4)}, Src: acc}},
			},
			RegReadOp{Reg: "r", Index: C(2, 1), Dst: "local.rv", Width: 32},
			// Unset fields adopt their declared width: local.never is
			// never written, so 0-1 must wrap at 16 bits, and the
			// division below sees a zero divisor (-> 0, no trap).
			AssignOp{Dst: "local.unset_use", DstWidth: 16,
				Src: Bin{Op: OpSub, X: Field{Ref: "local.never", Width: 16}, Y: C(16, 1)}},
			AssignOp{Dst: "local.div0", DstWidth: 12,
				Src: Bin{Op: OpDiv, X: acc, Y: Field{Ref: "local.never2", Width: 4}}},
			AssignOp{Dst: "local.shift", DstWidth: 16,
				Src: Bin{Op: OpShl, X: Field{Ref: "local.unset_use", Width: 16}, Y: C(8, 70)}},
			// Static array-slot references: path.1 is inside the stack,
			// path.7 is beyond its capacity (a distinct, never-set field).
			AssignOp{Dst: "local.mux", DstWidth: 9,
				Src: Mux{Cond: fx, X: Field{Ref: "hydra_header.path.1", Width: 9}, Y: C(9, 3)}},
			AssignOp{Dst: "local.oob", DstWidth: 9, Src: Field{Ref: "hydra_header.path.7", Width: 9}},
			AssignOp{Dst: "local.u", DstWidth: 12,
				Src: Bin{Op: OpAdd,
					X: Unary{Op: OpBNot, X: acc},
					Y: Unary{Op: OpAbs, X: Unary{Op: OpNeg, X: C(12, 5)}}}},
		},
		Checker: []Op{
			ApplyOp{Table: "t_acl", Keys: []Expr{fx, fy}},
			ApplyOp{Table: "t_wide", Keys: []Expr{C(8, 1), C(8, 2), C(8, 3), fy, C(8, 5)}},
			IfOp{
				Cond: Bin{Op: OpLAnd,
					X: Bin{Op: OpEq, X: Field{Ref: "ctrl.acl", Width: 8}, Y: C(8, 2)},
					Y: Field{Ref: "t_acl.$hit", Width: 1}},
				Then: []Op{
					AssignOp{Dst: FieldReject, DstWidth: 1, Src: C(1, 1)},
					ReportOp{Args: []Expr{Field{Ref: FieldSwitch, Width: 32}, acc, Field{Ref: "hydra_header.path.0", Width: 9}}},
				},
			},
		},
	}
}

func installLinkTestState(t *testing.T, st *State) {
	t.Helper()
	inserts := []struct {
		table string
		e     Entry
	}{
		{"t_exact", Entry{Keys: []KeyMatch{ExactKey(10), ExactKey(20)}, Action: []Value{B(16, 200)}}},
		{"t_exact", Entry{Keys: []KeyMatch{ExactKey(11), ExactKey(21)}, Action: []Value{B(16, 300)}}},
		{"t_acl", Entry{Keys: []KeyMatch{TernaryKey(8, 0xC), RangeKey(15, 30)}, Priority: 10, Action: []Value{B(8, 2)}}},
		{"t_acl", Entry{Keys: []KeyMatch{AnyKey(), RangeKey(0, 1000)}, Priority: 1, Action: []Value{B(8, 7)}}},
		{"t_wide", Entry{Keys: []KeyMatch{ExactKey(1), ExactKey(2), ExactKey(3), ExactKey(21), ExactKey(5)}, Action: []Value{B(8, 9)}}},
	}
	for _, ins := range inserts {
		if err := st.Tables[ins.table].Insert(ins.e); err != nil {
			t.Fatalf("insert into %s: %v", ins.table, err)
		}
	}
}

type parityHop struct {
	switchID uint64
	headers  map[FieldRef]Value
}

// runParity drives the same hop sequence through the map interpreter
// and the linked executor (each on its own State) and fails on any
// divergence: per-hop wire blob, reject flag, report payloads, or the
// op/apply counters.
func runParity(t *testing.T, prog *Program, mapSt, lnSt *State, hops []parityHop) {
	t.Helper()
	lk, err := Link(prog)
	if err != nil {
		t.Fatalf("link: %v", err)
	}

	var mapBlob, lnBlob []byte
	for hi, hop := range hops {
		first, last := hi == 0, hi == len(hops)-1

		// Map path.
		phv := make(PHV, 32)
		if err := prog.DecodeTele(mapBlob, phv); err != nil {
			t.Fatalf("hop %d: map decode: %v", hi, err)
		}
		phv.Set(FieldSwitch, B(32, hop.switchID))
		phv.Set(FieldPktLen, B(32, 100))
		phv.Set(FieldLastHop, BoolV(last))
		phv.Set(FieldFirst, BoolV(first))
		for ref, v := range hop.headers {
			phv.Set(ref, v)
		}
		ctx := &ExecContext{PHV: phv, State: mapSt}
		blocks := [][]Op{prog.Telemetry, prog.Checker}
		if first {
			blocks = append([][]Op{prog.Init}, blocks...)
		}
		for _, b := range blocks {
			if err := ctx.Exec(b); err != nil {
				t.Fatalf("hop %d: map exec: %v", hi, err)
			}
		}
		mapBlob = prog.EncodeTele(phv)

		// Linked path.
		c := lk.AcquireCtx()
		c.State = lnSt
		if err := lk.DecodeTele(lnBlob, c.PHV); err != nil {
			t.Fatalf("hop %d: linked decode: %v", hi, err)
		}
		c.PHV[lk.SlotSwitch] = B(32, hop.switchID)
		c.PHV[lk.SlotPktLen] = B(32, 100)
		c.PHV[lk.SlotLast] = BoolV(last)
		c.PHV[lk.SlotFirst] = BoolV(first)
		for ref, v := range hop.headers {
			slot, ok := lk.SlotOf(ref)
			if !ok {
				t.Fatalf("hop %d: header %s has no slot", hi, ref)
			}
			c.PHV[slot] = v
		}
		if first {
			lk.ExecInit(c)
		}
		lk.ExecTelemetry(c)
		lk.ExecChecker(c)
		lnBlob = lk.EncodeTele(nil, c.PHV)

		if !bytes.Equal(mapBlob, lnBlob) {
			t.Fatalf("hop %d: blob mismatch\n map    %x\n linked %x", hi, mapBlob, lnBlob)
		}
		if mr, lr := phv.Get(FieldReject).Bool(), c.PHV[lk.SlotReject].Bool(); mr != lr {
			t.Fatalf("hop %d: reject mismatch: map %v, linked %v", hi, mr, lr)
		}
		if ctx.OpsExecuted != c.OpsExecuted || ctx.TableApplies != c.TableApplies {
			t.Fatalf("hop %d: counters mismatch: map ops=%d applies=%d, linked ops=%d applies=%d",
				hi, ctx.OpsExecuted, ctx.TableApplies, c.OpsExecuted, c.TableApplies)
		}
		if len(ctx.Reports) != len(c.Reports) {
			t.Fatalf("hop %d: report count: map %d, linked %d", hi, len(ctx.Reports), len(c.Reports))
		}
		for i := range ctx.Reports {
			ma, la := ctx.Reports[i].Args, c.Reports[i].Args
			if len(ma) != len(la) {
				t.Fatalf("hop %d report %d: arity %d vs %d", hi, i, len(ma), len(la))
			}
			for j := range ma {
				if ma[j] != la[j] {
					t.Fatalf("hop %d report %d arg %d: map %+v, linked %+v", hi, i, j, ma[j], la[j])
				}
			}
		}
		lk.ReleaseCtx(c)
	}
}

func linkTestHops() []parityHop {
	return []parityHop{
		{switchID: 1, headers: map[FieldRef]Value{"hdr.x": B(32, 10), "hdr.y": B(16, 20)}},
		{switchID: 3, headers: map[FieldRef]Value{"hdr.x": B(32, 11), "hdr.y": B(16, 21)}},
		{switchID: 7, headers: map[FieldRef]Value{"hdr.x": B(32, 12), "hdr.y": B(16, 22)}},
		// Matches the t_acl ternary entry (8&0xC, 15<=y<=30) -> reject.
		{switchID: 2, headers: map[FieldRef]Value{"hdr.x": B(32, 0xFB), "hdr.y": B(16, 25)}},
	}
}

// TestLinkedParity runs the kitchen-sink program hop by hop on both
// executors and requires bit-identical results, in both telemetry
// encodings.
func TestLinkedParity(t *testing.T) {
	for _, aligned := range []bool{false, true} {
		prog := linkTestProg()
		prog.AlignedTele = aligned
		mapSt, lnSt := prog.NewState(), prog.NewState()
		installLinkTestState(t, mapSt)
		installLinkTestState(t, lnSt)
		runParity(t, prog, mapSt, lnSt, linkTestHops())
	}
}

// TestLinkedSlotLayout checks the slot invariants the compiled closures
// rely on: array elements are contiguous from their base, and distinct
// fields get distinct slots.
func TestLinkedSlotLayout(t *testing.T) {
	lk, err := Link(linkTestProg())
	if err != nil {
		t.Fatal(err)
	}
	base, ok := lk.SlotOf(ArraySlot("hydra_header.path", 0))
	if !ok {
		t.Fatal("path.0 has no slot")
	}
	for i := 1; i < 3; i++ {
		s, ok := lk.SlotOf(ArraySlot("hydra_header.path", i))
		if !ok || s != base+i {
			t.Fatalf("path.%d slot = %d (ok=%v), want %d", i, s, ok, base+i)
		}
	}
	// The beyond-capacity static reference is its own field, not part
	// of the contiguous block.
	oob, ok := lk.SlotOf("hydra_header.path.7")
	if !ok {
		t.Fatal("path.7 (beyond cap) has no slot")
	}
	if oob >= base && oob < base+3 {
		t.Fatalf("path.7 slot %d aliases the array block [%d,%d)", oob, base, base+3)
	}
	seen := map[int]bool{}
	for _, ref := range []FieldRef{FieldReject, FieldHops, FieldSwitch, FieldPktLen, FieldLastHop, FieldFirst} {
		s, ok := lk.SlotOf(ref)
		if !ok {
			t.Fatalf("builtin %s has no slot", ref)
		}
		if seen[s] {
			t.Fatalf("builtin %s shares slot %d", ref, s)
		}
		seen[s] = true
	}
}

// TestLinkedLiveInstall proves control-plane installs into a live State
// are visible through the linked executor without re-linking, across
// both table flavors: the exact path reads the shared table directly,
// and the cached TCAM path must invalidate via Table.Version on insert
// and delete.
func TestLinkedLiveInstall(t *testing.T) {
	prog := linkTestProg()
	lk, err := Link(prog)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.NewState()
	installLinkTestState(t, st)

	c := lk.AcquireCtx()
	defer lk.ReleaseCtx(c)
	c.State = st
	aclSlot, _ := lk.SlotOf("ctrl.acl")
	exSlot, _ := lk.SlotOf("ctrl.ex_out")
	xSlot, _ := lk.SlotOf("hdr.x")
	ySlot, _ := lk.SlotOf("hdr.y")

	run := func() (acl, ex uint64) {
		clear(c.PHV)
		c.PHV[xSlot] = B(32, 100)
		c.PHV[ySlot] = B(16, 500)
		lk.ExecTelemetry(c)
		lk.ExecChecker(c)
		return c.PHV[aclSlot].V, c.PHV[exSlot].V
	}

	if acl, ex := run(); acl != 7 || ex != 0x0BEE {
		t.Fatalf("pre-install: acl=%d ex=%#x, want 7 and 0xbee", acl, ex)
	}
	// Run twice so the TCAM cache is warm before the table changes.
	run()

	aclTbl := st.Tables["t_acl"]
	v0 := aclTbl.Version()
	if err := aclTbl.Insert(Entry{
		Keys:     []KeyMatch{TernaryKey(100, 0xFFFF), RangeKey(400, 600)},
		Priority: 50, Action: []Value{B(8, 42)},
	}); err != nil {
		t.Fatal(err)
	}
	if aclTbl.Version() == v0 {
		t.Fatal("Insert did not bump the table version")
	}
	if err := st.Tables["t_exact"].Insert(Entry{
		Keys: []KeyMatch{ExactKey(100), ExactKey(500)}, Action: []Value{B(16, 777)},
	}); err != nil {
		t.Fatal(err)
	}

	if acl, ex := run(); acl != 42 || ex != 777 {
		t.Fatalf("post-install: acl=%d ex=%d, want 42 and 777 (stale cache?)", acl, ex)
	}

	if n := aclTbl.Delete([]KeyMatch{TernaryKey(100, 0xFFFF), RangeKey(400, 600)}); n != 1 {
		t.Fatalf("Delete removed %d entries, want 1", n)
	}
	if acl, _ := run(); acl != 7 {
		t.Fatalf("post-delete: acl=%d, want 7 (stale cache after delete?)", acl)
	}
}

// TestLinkedTeleCodecRoundTrip cross-checks the static-offset codec
// against the sequential BitWriter/BitReader codec in both directions
// and both encodings.
func TestLinkedTeleCodecRoundTrip(t *testing.T) {
	for _, aligned := range []bool{false, true} {
		prog := linkTestProg()
		prog.AlignedTele = aligned
		lk, err := Link(prog)
		if err != nil {
			t.Fatal(err)
		}

		// Populate the telemetry fields through the map PHV, encode with
		// the reference codec, and require the linked decode + encode to
		// reproduce the bytes exactly.
		phv := PHV{}
		phv.Set(FieldHops, B(8, 3))
		phv.Set("hydra_header.acc", B(12, 0xABC))
		phv.Set(ArrayCount("hydra_header.path"), B(8, 2))
		phv.Set(ArraySlot("hydra_header.path", 0), B(9, 0x155))
		phv.Set(ArraySlot("hydra_header.path", 1), B(9, 0x0AA))
		phv.Set(ArraySlot("hydra_header.path", 2), B(9, 0))
		blob := prog.EncodeTele(phv)

		vec := make([]Value, lk.NumSlots())
		if err := lk.DecodeTele(blob, vec); err != nil {
			t.Fatalf("aligned=%v: linked decode: %v", aligned, err)
		}
		for _, ref := range []FieldRef{FieldHops, "hydra_header.acc", ArrayCount("hydra_header.path"),
			ArraySlot("hydra_header.path", 0), ArraySlot("hydra_header.path", 1)} {
			slot, ok := lk.SlotOf(ref)
			if !ok {
				t.Fatalf("no slot for %s", ref)
			}
			if vec[slot] != phv.Get(ref) {
				t.Errorf("aligned=%v: %s decoded %+v, want %+v", aligned, ref, vec[slot], phv.Get(ref))
			}
		}
		if got := lk.EncodeTele(nil, vec); !bytes.Equal(got, blob) {
			t.Errorf("aligned=%v: re-encode mismatch\n got  %x\n want %x", aligned, got, blob)
		}

		// Truncated blobs must error on both codecs.
		if err := lk.DecodeTele(blob[:1], vec); err == nil {
			t.Errorf("aligned=%v: linked decode accepted a truncated blob", aligned)
		}
		if err := prog.DecodeTele(blob[:1], PHV{}); err == nil {
			t.Errorf("aligned=%v: map decode accepted a truncated blob", aligned)
		}
	}
}

// TestLinkedAllocs is the hot-path allocation guard at the pipeline
// layer: steady-state linked execution of the telemetry block — table
// applies included — and the packed table lookup itself must not
// allocate; the blob encode must not allocate when the caller reuses
// its buffer.
func TestLinkedAllocs(t *testing.T) {
	prog := linkTestProg()
	lk, err := Link(prog)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.NewState()
	installLinkTestState(t, st)

	c := lk.AcquireCtx()
	defer lk.ReleaseCtx(c)
	c.State = st
	xSlot, _ := lk.SlotOf("hdr.x")
	ySlot, _ := lk.SlotOf("hdr.y")
	blob := make([]byte, 0, lk.TeleWireBytes())

	exec := func() {
		clear(c.PHV)
		// x=1 stays clear of the t_acl ternary entry (1&0xC != 8), so no
		// report fires and the run must be allocation-free.
		c.PHV[xSlot] = B(32, 1)
		c.PHV[ySlot] = B(16, 20)
		lk.ExecTelemetry(c)
		lk.ExecChecker(c)
		blob = lk.EncodeTele(blob[:0], c.PHV)
	}
	exec() // warm the TCAM cache and blob buffer
	// Covers the packed-exact, cached-TCAM and generic (>MaxPackedKeys,
	// t_wide) apply paths; no report fires on these headers.
	if n := testing.AllocsPerRun(200, exec); n > 0 {
		t.Errorf("linked telemetry+checker blocks: %.1f allocs/run, want 0", n)
	}

	tbl := st.Tables["t_exact"]
	k := PackedKey{10, 20}
	if n := testing.AllocsPerRun(200, func() {
		if _, hit := tbl.LookupPacked(k); !hit {
			t.Fatal("packed lookup missed")
		}
	}); n > 0 {
		t.Errorf("LookupPacked: %.1f allocs/run, want 0", n)
	}

	vals := []uint64{10, 20}
	if n := testing.AllocsPerRun(200, func() {
		if _, hit := tbl.Lookup(vals); !hit {
			t.Fatal("exact lookup missed")
		}
	}); n > 0 {
		t.Errorf("exact Lookup: %.1f allocs/run, want 0", n)
	}
}

// TestPooledCtxReportIsolation pins the AcquireCtx/ReleaseCtx contract
// the engine's HopResult path depends on: report slices (and the Args
// inside them) escape to the caller at release time, so a context
// coming back out of the pool must start with no reports and zeroed
// counters, and nothing a reused context does may clobber a previously
// escaped digest.
func TestPooledCtxReportIsolation(t *testing.T) {
	prog := linkTestProg()
	lk, err := Link(prog)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.NewState()
	installLinkTestState(t, st)
	xSlot, _ := lk.SlotOf("hdr.x")
	ySlot, _ := lk.SlotOf("hdr.y")

	// runHop executes one first+last hop that trips the t_acl reject
	// (x&0xC == 8, 15 <= y <= 30) and therefore raises one report.
	runHop := func(swID, x, y uint64) ([]Report, *LCtx) {
		c := lk.AcquireCtx()
		if len(c.Reports) != 0 || c.OpsExecuted != 0 || c.TableApplies != 0 {
			t.Fatalf("pooled ctx not clean: %d reports, ops=%d applies=%d",
				len(c.Reports), c.OpsExecuted, c.TableApplies)
		}
		for _, v := range c.PHV {
			if v != (Value{}) {
				t.Fatal("pooled ctx PHV has a stale value")
			}
		}
		c.State = st
		c.PHV[lk.SlotSwitch] = B(32, swID)
		c.PHV[lk.SlotPktLen] = B(32, 100)
		c.PHV[lk.SlotFirst] = BoolV(true)
		c.PHV[lk.SlotLast] = BoolV(true)
		c.PHV[xSlot] = B(32, x)
		c.PHV[ySlot] = B(16, y)
		lk.ExecInit(c)
		lk.ExecTelemetry(c)
		lk.ExecChecker(c)
		return c.Reports, c
	}

	assertArgs := func(reps []Report, wantSwitch uint64) {
		t.Helper()
		if len(reps) != 1 {
			t.Fatalf("got %d reports, want 1", len(reps))
		}
		if got := reps[0].Args[0].V; got != wantSwitch {
			t.Fatalf("report switch arg = %d, want %d", got, wantSwitch)
		}
	}

	// First packet: raise a digest, let it escape, release the context.
	escaped, c1 := runHop(2, 0xFB, 25)
	assertArgs(escaped, 2)
	lk.ReleaseCtx(c1)

	// Drain the pool through many reuse cycles with different inputs;
	// sync.Pool gives no identity guarantee, so hammer it until c1 has
	// demonstrably been reused at least once.
	reused := false
	for i := 0; i < 64; i++ {
		reps, c := runHop(uint64(100+i), 0xFB, 25)
		assertArgs(reps, uint64(100+i))
		reused = reused || c == c1
		lk.ReleaseCtx(c)
	}
	if !reused {
		t.Skip("pool never returned the original context; isolation unobservable")
	}

	// The escaped digest must be exactly what hop one raised: reuse of
	// its birth context may not have rewritten its Args in place.
	assertArgs(escaped, 2)
}

// TestEphemeralReportsArena pins the opt-in zero-allocation report path
// (BeginEphemeralReports): raising a report in ephemeral mode allocates
// nothing at steady state, the arena is reused across acquire/release
// cycles, and a context released from ephemeral mode comes back in the
// default detach-on-release mode.
func TestEphemeralReportsArena(t *testing.T) {
	prog := linkTestProg()
	lk, err := Link(prog)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.NewState()
	installLinkTestState(t, st)
	xSlot, _ := lk.SlotOf("hdr.x")
	ySlot, _ := lk.SlotOf("hdr.y")

	// One ephemeral hop that trips the t_acl report; the caller consumes
	// Reports before release, as the contract requires.
	hop := func(c *LCtx, swID uint64) {
		clear(c.PHV)
		c.BeginEphemeralReports()
		c.State = st
		c.PHV[lk.SlotSwitch] = B(32, swID)
		c.PHV[lk.SlotPktLen] = B(32, 100)
		c.PHV[lk.SlotFirst] = BoolV(true)
		c.PHV[lk.SlotLast] = BoolV(true)
		c.PHV[xSlot] = B(32, 0xFB)
		c.PHV[ySlot] = B(16, 25)
		lk.ExecInit(c)
		lk.ExecTelemetry(c)
		lk.ExecChecker(c)
		if len(c.Reports) != 1 || c.Reports[0].Args[0].V != swID {
			t.Fatalf("ephemeral hop: got %d reports (want 1 with switch %d)", len(c.Reports), swID)
		}
	}

	// Use a single pinned context so sync.Pool churn can't attribute a
	// different (cold) context's arena growth to the steady state.
	c := lk.AcquireCtx()
	hop(c, 1) // warm: first run grows the arena and report slice
	c.ephemeral = false
	c.ephReports = c.Reports[:0]
	c.Reports = nil
	if n := testing.AllocsPerRun(200, func() {
		hop(c, 7)
		// Manual release bookkeeping (ReleaseCtx would hand the ctx back
		// to the pool, and another test's context could come out instead).
		c.ephemeral = false
		c.ephReports = c.Reports[:0]
		c.Reports = nil
		c.TableApplies, c.OpsExecuted = 0, 0
	}); n > 0 {
		t.Errorf("ephemeral report raise: %.1f allocs/run, want 0", n)
	}
	lk.ReleaseCtx(c)

	// After a real ReleaseCtx from ephemeral mode, the context must be
	// back in detach mode: a report raised without BeginEphemeralReports
	// survives its context's release and reuse untouched.
	c2 := lk.AcquireCtx()
	clear(c2.PHV)
	c2.State = st
	c2.PHV[lk.SlotSwitch] = B(32, 42)
	c2.PHV[lk.SlotPktLen] = B(32, 100)
	c2.PHV[lk.SlotFirst] = BoolV(true)
	c2.PHV[lk.SlotLast] = BoolV(true)
	c2.PHV[xSlot] = B(32, 0xFB)
	c2.PHV[ySlot] = B(16, 25)
	lk.ExecInit(c2)
	lk.ExecTelemetry(c2)
	lk.ExecChecker(c2)
	escaped := c2.Reports
	lk.ReleaseCtx(c2)
	for i := 0; i < 8; i++ {
		c3 := lk.AcquireCtx()
		hop(c3, uint64(200+i))
		lk.ReleaseCtx(c3)
	}
	if len(escaped) != 1 || escaped[0].Args[0].V != 42 {
		t.Fatalf("detached report was clobbered by later ephemeral reuse: %+v", escaped)
	}
}
