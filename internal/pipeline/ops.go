package pipeline

import "fmt"

// Op is one structured operation of the pipeline IR.
type Op interface{ opNode() }

// AssignOp writes Src to the PHV field Dst (width DstWidth).
type AssignOp struct {
	Dst      FieldRef
	DstWidth int
	Src      Expr
}

// ApplyOp applies the named table: the key expressions are evaluated,
// the matching entry's action data (or the default) is written to the
// table's output fields, and the hit flag lands in "<table>.$hit".
type ApplyOp struct {
	Table string
	Keys  []Expr
}

// RegReadOp reads cell Index of register Reg into Dst.
type RegReadOp struct {
	Reg   string
	Index Expr
	Dst   FieldRef
	Width int
}

// RegWriteOp writes Src into cell Index of register Reg.
type RegWriteOp struct {
	Reg   string
	Index Expr
	Src   Expr
}

// IfOp branches on Cond.
type IfOp struct {
	Cond Expr
	Then []Op
	Else []Op
}

// PushOp appends Src to the header-stack array Base (capacity Cap,
// element width ElemWidth), evicting the oldest element when full so the
// stack keeps the most recent Cap values.
type PushOp struct {
	Base      string
	ElemWidth int
	Cap       int
	Src       Expr
}

// SetSlotOp writes Src to slot Index of array Base, growing the valid
// count as needed (compiled from a[i] = e).
type SetSlotOp struct {
	Base      string
	ElemWidth int
	Cap       int
	Index     Expr
	Src       Expr
}

// ReportOp emits a report digest with the evaluated argument values.
type ReportOp struct{ Args []Expr }

func (AssignOp) opNode()   {}
func (ApplyOp) opNode()    {}
func (RegReadOp) opNode()  {}
func (RegWriteOp) opNode() {}
func (IfOp) opNode()       {}
func (PushOp) opNode()     {}
func (SetSlotOp) opNode()  {}
func (ReportOp) opNode()   {}

// Report is a report digest raised during execution.
type Report struct {
	Args []Value
}

// ExecContext carries the mutable execution state for one block run.
type ExecContext struct {
	PHV     PHV
	State   *State
	Reports []Report
	// TableApplies counts table lookups, for the performance model.
	TableApplies int
	// OpsExecuted counts IR ops, for the performance model.
	OpsExecuted int
}

// Exec runs a block of ops.
func (c *ExecContext) Exec(ops []Op) error {
	for _, op := range ops {
		c.OpsExecuted++
		switch op := op.(type) {
		case AssignOp:
			v := op.Src.Eval(c.PHV)
			c.PHV.Set(op.Dst, B(op.DstWidth, v.V))

		case ApplyOp:
			t, ok := c.State.Tables[op.Table]
			if !ok {
				return fmt.Errorf("pipeline: apply of undeclared table %q", op.Table)
			}
			keys := make([]uint64, len(op.Keys))
			for i, k := range op.Keys {
				keys[i] = k.Eval(c.PHV).V
			}
			action, hit := t.Lookup(keys)
			for i, out := range t.Outputs {
				c.PHV.Set(out, action[i])
			}
			c.PHV.Set(t.HitField(), BoolV(hit))
			c.TableApplies++

		case RegReadOp:
			r, ok := c.State.Registers[op.Reg]
			if !ok {
				return fmt.Errorf("pipeline: read of undeclared register %q", op.Reg)
			}
			idx := int(op.Index.Eval(c.PHV).V)
			c.PHV.Set(op.Dst, B(op.Width, r.Read(idx)))

		case RegWriteOp:
			r, ok := c.State.Registers[op.Reg]
			if !ok {
				return fmt.Errorf("pipeline: write to undeclared register %q", op.Reg)
			}
			idx := int(op.Index.Eval(c.PHV).V)
			r.Write(idx, op.Src.Eval(c.PHV).V)

		case IfOp:
			if op.Cond.Eval(c.PHV).Bool() {
				if err := c.Exec(op.Then); err != nil {
					return err
				}
			} else if err := c.Exec(op.Else); err != nil {
				return err
			}

		case PushOp:
			cnt := int(c.PHV.Get(ArrayCount(op.Base)).V)
			v := op.Src.Eval(c.PHV)
			if cnt < op.Cap {
				c.PHV.Set(ArraySlot(op.Base, cnt), B(op.ElemWidth, v.V))
				c.PHV.Set(ArrayCount(op.Base), B(8, uint64(cnt+1)))
				break
			}
			// Full: shift out the oldest element.
			for i := 0; i+1 < op.Cap; i++ {
				c.PHV.Set(ArraySlot(op.Base, i), c.PHV.Get(ArraySlot(op.Base, i+1)))
			}
			c.PHV.Set(ArraySlot(op.Base, op.Cap-1), B(op.ElemWidth, v.V))

		case SetSlotOp:
			idx := int(op.Index.Eval(c.PHV).V)
			if idx < 0 || idx >= op.Cap {
				break // out-of-range writes are dropped, as on hardware
			}
			v := op.Src.Eval(c.PHV)
			c.PHV.Set(ArraySlot(op.Base, idx), B(op.ElemWidth, v.V))
			if cnt := int(c.PHV.Get(ArrayCount(op.Base)).V); idx >= cnt {
				c.PHV.Set(ArrayCount(op.Base), B(8, uint64(idx+1)))
			}

		case ReportOp:
			args := make([]Value, len(op.Args))
			for i, a := range op.Args {
				args[i] = a.Eval(c.PHV)
			}
			c.Reports = append(c.Reports, Report{Args: args})

		default:
			return fmt.Errorf("pipeline: unknown op %T", op)
		}
	}
	return nil
}

// WalkOps visits every op in a block tree, depth-first; used by the
// resource model and the P4 emitter.
func WalkOps(ops []Op, visit func(Op)) {
	for _, op := range ops {
		visit(op)
		if ifOp, ok := op.(IfOp); ok {
			WalkOps(ifOp.Then, visit)
			WalkOps(ifOp.Else, visit)
		}
	}
}
