package pipeline

import (
	"sync"
	"testing"
)

// TestStressTablesAndRegisters hammers one state's tables — the
// exact-map fast path and the TCAM slow path — plus a register array
// from concurrent install/delete and lookup goroutines, the access
// pattern a live engine shard sees while the control plane installs
// entries mid-run. Run under -race this is the package's concurrency
// audit; without -race it still checks the table never tears (a lookup
// sees either the old or the new action, never garbage).
func TestStressTablesAndRegisters(t *testing.T) {
	exact := NewTable("exact",
		[]KeySpec{{Name: "k", Width: 16, Kind: MatchExact}},
		[]FieldRef{"v"}, []Value{B(32, 0)})
	tcam := NewTable("tcam",
		[]KeySpec{{Name: "addr", Width: 32, Kind: MatchLPM}, {Name: "proto", Width: 8, Kind: MatchTernary}},
		[]FieldRef{"v"}, []Value{B(32, 0)})
	reg := NewRegister("load", 32, 8)

	const (
		writers   = 2
		readers   = 4
		mutations = 3000
		lookups   = 20000
	)
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < mutations; i++ {
				k := uint64((i*7 + w*13) % 64)
				if i%5 == 4 {
					exact.Delete([]KeyMatch{ExactKey(k)})
				} else if err := exact.Insert(Entry{
					Keys:   []KeyMatch{ExactKey(k)},
					Action: []Value{B(32, uint64(i))},
				}); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if err := tcam.Insert(Entry{
						Keys:     []KeyMatch{PrefixKey(k<<8, 24), TernaryKey(uint64(w), 0xff)},
						Priority: i % 4,
						Action:   []Value{B(32, uint64(i))},
					}); err != nil {
						t.Error(err)
						return
					}
				}
				reg.Write(i%reg.Size, uint64(i))
			}
		}()
	}

	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < lookups; i++ {
				if v, hit := exact.Lookup([]uint64{uint64(i % 64)}); hit && v[0].W != 32 {
					t.Errorf("reader %d: torn exact action %+v", r, v)
					return
				}
				if v, hit := tcam.Lookup([]uint64{uint64(i%64) << 8, uint64(i % writers)}); hit && v[0].W != 32 {
					t.Errorf("reader %d: torn tcam action %+v", r, v)
					return
				}
				_ = reg.Read(i % reg.Size)
				_ = exact.Len()
				_ = tcam.Version()
			}
		}()
	}

	wg.Wait()

	// The structures must still be coherent after the storm.
	if exact.Len() > 64 {
		t.Fatalf("exact table grew to %d entries from 64 keys", exact.Len())
	}
	if err := exact.Insert(Entry{Keys: []KeyMatch{ExactKey(1)}, Action: []Value{B(32, 42)}}); err != nil {
		t.Fatal(err)
	}
	if v, hit := exact.Lookup([]uint64{1}); !hit || v[0].V != 42 {
		t.Fatalf("post-storm lookup got %v (hit=%v), want 42", v, hit)
	}
}
