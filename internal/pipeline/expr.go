package pipeline

import "fmt"

// OpCode enumerates the expression operators of the pipeline IR.
type OpCode int

// Expression opcodes. Arithmetic wraps at the result width; division and
// modulo by zero yield zero (the pipeline has no traps); comparisons are
// unsigned; Abs interprets its operand as two's complement.
const (
	OpAdd OpCode = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpBAnd
	OpBOr
	OpBXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLAnd
	OpLOr
	OpNot  // logical not (unary)
	OpBNot // bitwise complement (unary)
	OpNeg  // two's-complement negation (unary)
	OpAbs  // |x| under two's complement (unary)
	OpMax
	OpMin

	// opCodeCount must stay last: it ties the opNames table to the
	// opcode list at compile time.
	opCodeCount
)

// opNames is indexed by OpCode — an array lookup, not a map hash, since
// OpCode.String sits on interpreter error paths and debug output. The
// sparse-literal form keeps each name next to its opcode.
var opNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpBAnd: "&", OpBOr: "|", OpBXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpLAnd: "&&", OpLOr: "||", OpNot: "!", OpBNot: "~", OpNeg: "-",
	OpAbs: "abs", OpMax: "max", OpMin: "min",
}

// Compile-time exhaustiveness check: adding an opcode without naming it
// (or naming one past the end) changes len(opNames) away from
// opCodeCount and this assignment stops compiling. A unit test covers
// the remaining gap (a new opcode indexed below an existing one, which
// would leave an empty string in the middle).
var _ [opCodeCount]string = opNames

func (o OpCode) String() string {
	if o >= 0 && int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("OpCode(%d)", int(o))
}

// Expr is a compiled expression over PHV fields.
type Expr interface {
	// Eval computes the expression against the PHV.
	Eval(phv PHV) Value
	// String renders the expression in P4-ish syntax.
	String() string
}

// Field reads a PHV field.
type Field struct {
	Ref   FieldRef
	Width int
}

// Eval implements Expr.
func (f Field) Eval(phv PHV) Value {
	v := phv.Get(f.Ref)
	if v.W == 0 {
		return Value{W: f.Width}
	}
	return v
}

func (f Field) String() string { return string(f.Ref) }

// Const is a literal.
type Const struct{ Val Value }

// C returns a width-w constant expression.
func C(w int, v uint64) Const { return Const{Val: B(w, v)} }

// Eval implements Expr.
func (c Const) Eval(PHV) Value { return c.Val }

func (c Const) String() string { return fmt.Sprintf("%d", c.Val.V) }

// Unary applies a unary opcode.
type Unary struct {
	Op OpCode
	X  Expr
}

// Eval implements Expr.
func (u Unary) Eval(phv PHV) Value {
	x := u.X.Eval(phv)
	switch u.Op {
	case OpNot:
		return BoolV(!x.Bool())
	case OpBNot:
		return B(x.W, ^x.V)
	case OpNeg:
		return B(x.W, -x.V)
	case OpAbs:
		s := x.Signed()
		if s < 0 {
			s = -s
		}
		return B(x.W, uint64(s))
	}
	panic("pipeline: bad unary opcode " + u.Op.String())
}

func (u Unary) String() string {
	if u.Op == OpAbs {
		return fmt.Sprintf("abs(%s)", u.X)
	}
	return fmt.Sprintf("%s(%s)", u.Op, u.X)
}

// Bin applies a binary opcode. Operand widths are reconciled by letting
// a width-0 (unset/weak) side adopt the other side's width.
type Bin struct {
	Op   OpCode
	X, Y Expr
}

// Eval implements Expr.
func (b Bin) Eval(phv PHV) Value {
	// Short-circuit logical operators.
	switch b.Op {
	case OpLAnd:
		if !b.X.Eval(phv).Bool() {
			return BoolV(false)
		}
		return BoolV(b.Y.Eval(phv).Bool())
	case OpLOr:
		if b.X.Eval(phv).Bool() {
			return BoolV(true)
		}
		return BoolV(b.Y.Eval(phv).Bool())
	}

	x, y := b.X.Eval(phv), b.Y.Eval(phv)
	w := x.W
	if w == 0 {
		w = y.W
	}
	switch b.Op {
	case OpAdd:
		return B(w, x.V+y.V)
	case OpSub:
		return B(w, x.V-y.V)
	case OpMul:
		return B(w, x.V*y.V)
	case OpDiv:
		if y.V == 0 {
			return B(w, 0)
		}
		return B(w, x.V/y.V)
	case OpMod:
		if y.V == 0 {
			return B(w, 0)
		}
		return B(w, x.V%y.V)
	case OpBAnd:
		return B(w, x.V&y.V)
	case OpBOr:
		return B(w, x.V|y.V)
	case OpBXor:
		return B(w, x.V^y.V)
	case OpShl:
		if y.V >= 64 {
			return B(w, 0)
		}
		return B(w, x.V<<y.V)
	case OpShr:
		if y.V >= 64 {
			return B(w, 0)
		}
		return B(w, x.V>>y.V)
	case OpEq:
		return BoolV(x.V == y.V)
	case OpNe:
		return BoolV(x.V != y.V)
	case OpLt:
		return BoolV(x.V < y.V)
	case OpLe:
		return BoolV(x.V <= y.V)
	case OpGt:
		return BoolV(x.V > y.V)
	case OpGe:
		return BoolV(x.V >= y.V)
	case OpMax:
		if x.V >= y.V {
			return B(w, x.V)
		}
		return B(w, y.V)
	case OpMin:
		if x.V <= y.V {
			return B(w, x.V)
		}
		return B(w, y.V)
	}
	panic("pipeline: bad binary opcode " + b.Op.String())
}

// Mux is a conditional expression (P4-16's `cond ? x : y`), used for
// runtime-indexed header-stack reads.
type Mux struct {
	Cond Expr
	X, Y Expr
}

// Eval implements Expr.
func (m Mux) Eval(phv PHV) Value {
	if m.Cond.Eval(phv).Bool() {
		return m.X.Eval(phv)
	}
	return m.Y.Eval(phv)
}

func (m Mux) String() string { return fmt.Sprintf("(%s ? %s : %s)", m.Cond, m.X, m.Y) }

func (b Bin) String() string {
	switch b.Op {
	case OpMax, OpMin:
		return fmt.Sprintf("%s(%s, %s)", b.Op, b.X, b.Y)
	}
	return fmt.Sprintf("(%s %s %s)", b.X, b.Op, b.Y)
}
