package pipeline

import (
	"fmt"
	"sort"
	"sync"
)

// This file implements the install-time linking pass: Link resolves
// every FieldRef a program can touch into a dense slot index, so the
// per-packet PHV becomes a flat []Value instead of a map, and compiles
// the structured Op/Expr trees into slot-indexed closures with no
// string hashing, no interface dispatch, and no allocation on the
// per-packet path. Execution contexts (PHV vector, TCAM lookup caches,
// report buffers) are pooled and reused across packets.
//
// Linking is purely a representation change: a linked program is
// bit-identical to the ExecContext map interpreter on every input (the
// difftest conformance suite enforces this across the corpus and
// randomized programs). Control-plane table updates need no re-link —
// ops resolve *Table/*Register out of the per-switch State by index at
// execution time, and the per-context TCAM caches are invalidated
// through Table.Version.

// linkedExpr computes an expression over the slot PHV.
type linkedExpr func(phv []Value) Value

// linkedOp executes one op against the linked context. Linked ops are
// infallible: every failure mode of the map interpreter (undeclared
// tables, unknown ops) is rejected at link time instead.
type linkedOp func(c *LCtx)

// LCtx is the pooled per-execution state of a linked program: the flat
// PHV, the switch state, and the per-context TCAM lookup caches.
type LCtx struct {
	PHV     []Value
	State   *State
	Reports []Report
	// TableApplies and OpsExecuted mirror ExecContext's counters.
	TableApplies int
	OpsExecuted  int

	caches []applyCache
	// wide is the reusable key buffer for applies of tables with more
	// than MaxPackedKeys columns.
	wide []uint64

	// Ephemeral-report mode (BeginEphemeralReports): reports and their
	// Args are carved from context-owned buffers that survive release
	// instead of being heap-allocated per report.
	ephemeral  bool
	ephReports []Report
	argArena   []Value
}

// BeginEphemeralReports arms arena-backed report storage for the
// current execution: every report raised until the context is released
// reuses the context's own report and argument buffers, so a reporting
// hop costs zero allocations at steady state. The caller gives up the
// escape guarantee in exchange: it must fully consume (or copy) the
// returned Reports — including the Args inside — before the next
// execution acquired from this Linked's pool, from any goroutine.
// Single-threaded embedders that deliver reports synchronously (the
// netsim event loop) qualify; anything that retains reports must not
// use this.
func (c *LCtx) BeginEphemeralReports() {
	c.ephemeral = true
	c.Reports = c.ephReports[:0]
	c.argArena = c.argArena[:0]
}

// applyCache memoizes TCAM lookups for one ApplyOp site, keyed by the
// packed lookup key and invalidated whenever the table pointer or its
// version changes. Exact tables never use it (their map lookup is
// already O(1)).
type applyCache struct {
	table   *Table
	version uint64
	m       map[PackedKey]cacheEnt
}

type cacheEnt struct {
	action []Value
	hit    bool
}

// maxCacheEntries bounds each per-site TCAM cache; beyond it, lookups
// fall through uncached rather than growing the map unboundedly.
const maxCacheEntries = 1024

// teleStep is one field of the precomputed telemetry wire layout: the
// slot it maps to and its static bit offset in the blob.
type teleStep struct {
	slot  int
	width int
	off   int
}

// Linked is the slot-resolved, closure-compiled form of a Program. One
// Linked is built per program (Link is install-time, not per-packet)
// and is safe for concurrent use from any number of shards.
type Linked struct {
	Prog *Program

	slots  map[FieldRef]int
	nSlots int

	init, tele, check []linkedOp

	teleSteps []teleStep
	teleBits  int

	bindings  []string
	bindSlots []int

	// Well-known slots, resolved once.
	SlotReject, SlotHops, SlotSwitch, SlotPktLen, SlotLast, SlotFirst int

	nCaches int
	ctxPool sync.Pool
}

// Link builds the slot-resolved executable form of prog. It fails only
// on programs the map interpreter would also reject at execution time
// (ops referencing undeclared tables or registers).
func Link(prog *Program) (*Linked, error) {
	lk := &Linked{Prog: prog, slots: make(map[FieldRef]int, 64)}

	lk.SlotReject = lk.intern(FieldReject)
	lk.SlotHops = lk.intern(FieldHops)
	lk.SlotSwitch = lk.intern(FieldSwitch)
	lk.SlotPktLen = lk.intern(FieldPktLen)
	lk.SlotLast = lk.intern(FieldLastHop)
	lk.SlotFirst = lk.intern(FieldFirst)

	// Array bases get contiguous slot blocks so runtime-indexed slot
	// access is base+i. Collect every base with its largest capacity
	// before assigning any other slots.
	caps := map[string]int{}
	note := func(base string, c int) {
		if c > caps[base] {
			caps[base] = c
		}
	}
	for _, f := range prog.Tele {
		if f.IsArray {
			note(f.Name, f.Cap)
		}
	}
	for _, blk := range [][]Op{prog.Init, prog.Telemetry, prog.Checker} {
		WalkOps(blk, func(op Op) {
			switch op := op.(type) {
			case PushOp:
				note(op.Base, op.Cap)
			case SetSlotOp:
				note(op.Base, op.Cap)
			}
		})
	}
	bases := make([]string, 0, len(caps))
	for b := range caps {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	arrays := make(map[string]int, len(bases))
	for _, b := range bases {
		lk.intern(ArrayCount(b))
		start := lk.nSlots
		for i := 0; i < caps[b]; i++ {
			if s := lk.intern(ArraySlot(b, i)); s != start+i {
				return nil, fmt.Errorf("pipeline: link: array %s slots not contiguous", b)
			}
		}
		arrays[b] = start
	}

	lk.layoutTele(arrays)

	// Header bindings, in sorted path order — the contract for
	// HopEnv.SlotHeaders (compiler.Runtime.Bindings exposes the same
	// order).
	seen := map[string]bool{}
	for _, path := range prog.HeaderBindings {
		if !seen[path] {
			seen[path] = true
			lk.bindings = append(lk.bindings, path)
		}
	}
	sort.Strings(lk.bindings)
	lk.bindSlots = make([]int, len(lk.bindings))
	for i, p := range lk.bindings {
		lk.bindSlots[i] = lk.intern(FieldRef(p))
	}

	var err error
	if lk.init, err = lk.compileOps(prog.Init, arrays); err != nil {
		return nil, err
	}
	if lk.tele, err = lk.compileOps(prog.Telemetry, arrays); err != nil {
		return nil, err
	}
	if lk.check, err = lk.compileOps(prog.Checker, arrays); err != nil {
		return nil, err
	}

	lk.ctxPool.New = func() any {
		return &LCtx{
			PHV:    make([]Value, lk.nSlots),
			caches: make([]applyCache, lk.nCaches),
		}
	}
	return lk, nil
}

// MustLink links prog, panicking on error; for programs already
// validated by the compiler.
func MustLink(prog *Program) *Linked {
	lk, err := Link(prog)
	if err != nil {
		panic(err)
	}
	return lk
}

func (lk *Linked) intern(f FieldRef) int {
	if s, ok := lk.slots[f]; ok {
		return s
	}
	s := lk.nSlots
	lk.slots[f] = s
	lk.nSlots++
	return s
}

// NumSlots returns the PHV vector length.
func (lk *Linked) NumSlots() int { return lk.nSlots }

// SlotOf resolves a field to its slot index, if the program references
// it anywhere.
func (lk *Linked) SlotOf(f FieldRef) (int, bool) {
	s, ok := lk.slots[f]
	return s, ok
}

// Bindings returns the header-binding paths the program reads, in the
// order HopEnv.SlotHeaders must be laid out (sorted, deduplicated).
func (lk *Linked) Bindings() []string { return lk.bindings }

// BindHeaderSlots copies bound header values into the PHV: vals[i]
// corresponds to Bindings()[i], and a zero-width Value marks an absent
// binding (matching a missing key in the map-based Headers env).
func (lk *Linked) BindHeaderSlots(phv []Value, vals []Value) {
	for i, s := range lk.bindSlots {
		if i >= len(vals) {
			return
		}
		if v := vals[i]; v.W != 0 {
			phv[s] = v
		}
	}
}

// BindHeaderMap copies bound header values from a path-keyed map.
func (lk *Linked) BindHeaderMap(phv []Value, headers map[string]Value) {
	for i, p := range lk.bindings {
		if v, ok := headers[p]; ok {
			phv[lk.bindSlots[i]] = v
		}
	}
}

// AcquireCtx returns a cleared execution context from the pool.
// ReleaseCtx's invariant guarantees counters are zero and the report
// buffer is nil on every pooled context, so only the PHV needs
// clearing here.
func (lk *Linked) AcquireCtx() *LCtx {
	c := lk.ctxPool.Get().(*LCtx)
	clear(c.PHV)
	return c
}

// ReleaseCtx resets a context and returns it to the pool. The report
// slice — and the Args slices inside each Report — escape into the
// HopResult the caller is still reading, so Reports is detached
// unconditionally: a pooled context never retains digest storage from
// a previous packet, and a reused context can never clobber an escaped
// digest. (Reports only ever gains capacity when a report is raised,
// so for the common report-free packet this nil store is free.)
// Ephemeral mode (BeginEphemeralReports) keeps the backing arrays for
// the next ephemeral execution instead — that caller has promised the
// reports do not outlive this release.
func (lk *Linked) ReleaseCtx(c *LCtx) {
	c.State = nil
	c.OpsExecuted, c.TableApplies = 0, 0
	if c.ephemeral {
		c.ephemeral = false
		c.ephReports = c.Reports[:0]
	}
	c.Reports = nil
	lk.ctxPool.Put(c)
}

// ExecInit runs the linked init block.
func (lk *Linked) ExecInit(c *LCtx) { runOps(c, lk.init) }

// ExecTelemetry runs the linked telemetry block.
func (lk *Linked) ExecTelemetry(c *LCtx) { runOps(c, lk.tele) }

// ExecChecker runs the linked checker block.
func (lk *Linked) ExecChecker(c *LCtx) { runOps(c, lk.check) }

func runOps(c *LCtx, ops []linkedOp) {
	for _, op := range ops {
		op(c)
	}
}

// ---------------------------------------------------------------------------
// Telemetry wire codec over slots

// layoutTele precomputes the static bit offset of every telemetry field
// (including array valid counts and the leading hop counter), mirroring
// the sequential BitWriter/BitReader layout of Program.EncodeTele.
func (lk *Linked) layoutTele(arrays map[string]int) {
	p := lk.Prog
	off := 0
	add := func(slot, width int) {
		lk.teleSteps = append(lk.teleSteps, teleStep{slot: slot, width: width, off: off})
		off += width
	}
	align := func() {
		if p.AlignedTele {
			off = (off + 7) &^ 7
		}
	}
	add(lk.SlotHops, 8)
	for _, f := range p.Tele {
		if f.IsArray {
			add(lk.intern(ArrayCount(f.Name)), 8)
			base := arrays[f.Name]
			for i := 0; i < f.Cap; i++ {
				add(base+i, f.Width)
				align()
			}
			continue
		}
		add(lk.intern(FieldRef(f.Name)), f.Width)
		align()
	}
	lk.teleBits = off
}

// TeleWireBytes is the serialized telemetry blob size.
func (lk *Linked) TeleWireBytes() int { return (lk.teleBits + 7) / 8 }

// DecodeTele unpacks a telemetry blob into the slot PHV. An empty blob
// (first hop) zero-fills the telemetry slots at their declared widths.
func (lk *Linked) DecodeTele(blob []byte, phv []Value) error {
	if len(blob) == 0 {
		for _, st := range lk.teleSteps {
			phv[st.slot] = Value{W: st.width}
		}
		return nil
	}
	if len(blob)*8 < lk.teleBits {
		return fmt.Errorf("pipeline: telemetry blob: bit read past end: need %d bits, have %d", lk.teleBits, len(blob)*8)
	}
	for _, st := range lk.teleSteps {
		phv[st.slot] = Value{W: st.width, V: getBits(blob, st.off, st.width)}
	}
	return nil
}

// EncodeTele packs the slot PHV's telemetry fields into dst's storage
// (grown only if too small) and returns the blob. Callers that own dst
// get an allocation-free encode; pass nil for a fresh blob.
func (lk *Linked) EncodeTele(dst []byte, phv []Value) []byte {
	n := lk.TeleWireBytes()
	if cap(dst) >= n {
		dst = dst[:n]
		clear(dst)
	} else {
		dst = make([]byte, n)
	}
	for _, st := range lk.teleSteps {
		putBits(dst, st.off, st.width, phv[st.slot].V)
	}
	return dst
}

// putBits writes the low `width` bits of v MSB-first at static bit
// offset off. The buffer must be pre-zeroed; byte-aligned whole-byte
// writes take a store-only fast path.
func putBits(buf []byte, off, width int, v uint64) {
	if width <= 0 {
		return
	}
	v = Mask(width, v)
	if off%8 == 0 && width%8 == 0 {
		for i := width - 8; i >= 0; i -= 8 {
			buf[off>>3] = byte(v >> uint(i))
			off += 8
		}
		return
	}
	for i := width - 1; i >= 0; i-- {
		buf[off>>3] |= byte(v>>uint(i)&1) << uint(7-off%8)
		off++
	}
}

// getBits reads `width` bits MSB-first from static bit offset off.
func getBits(buf []byte, off, width int) uint64 {
	var v uint64
	if off%8 == 0 && width%8 == 0 {
		for i := 0; i < width; i += 8 {
			v = v<<8 | uint64(buf[off>>3])
			off += 8
		}
		return v
	}
	for i := 0; i < width; i++ {
		v = v<<1 | uint64(buf[off>>3]>>uint(7-off%8)&1)
		off++
	}
	return v
}

// ---------------------------------------------------------------------------
// Op compilation

func (lk *Linked) compileOps(ops []Op, arrays map[string]int) ([]linkedOp, error) {
	out := make([]linkedOp, 0, len(ops))
	for _, op := range ops {
		switch op := op.(type) {
		case AssignOp:
			src, err := lk.compileExpr(op.Src)
			if err != nil {
				return nil, err
			}
			dst, w := lk.intern(op.Dst), op.DstWidth
			out = append(out, func(c *LCtx) {
				c.OpsExecuted++
				v := src(c.PHV)
				c.PHV[dst] = B(w, v.V)
			})

		case ApplyOp:
			lop, err := lk.compileApply(op)
			if err != nil {
				return nil, err
			}
			out = append(out, lop)

		case RegReadOp:
			ri, err := lk.regIndex(op.Reg)
			if err != nil {
				return nil, err
			}
			idx, err := lk.compileExpr(op.Index)
			if err != nil {
				return nil, err
			}
			dst, w, name := lk.intern(op.Dst), op.Width, op.Reg
			out = append(out, func(c *LCtx) {
				c.OpsExecuted++
				r := c.State.regAt(ri, name)
				c.PHV[dst] = B(w, r.Read(int(idx(c.PHV).V)))
			})

		case RegWriteOp:
			ri, err := lk.regIndex(op.Reg)
			if err != nil {
				return nil, err
			}
			idx, err := lk.compileExpr(op.Index)
			if err != nil {
				return nil, err
			}
			src, err := lk.compileExpr(op.Src)
			if err != nil {
				return nil, err
			}
			name := op.Reg
			out = append(out, func(c *LCtx) {
				c.OpsExecuted++
				r := c.State.regAt(ri, name)
				r.Write(int(idx(c.PHV).V), src(c.PHV).V)
			})

		case IfOp:
			cond, err := lk.compileExpr(op.Cond)
			if err != nil {
				return nil, err
			}
			thenOps, err := lk.compileOps(op.Then, arrays)
			if err != nil {
				return nil, err
			}
			elseOps, err := lk.compileOps(op.Else, arrays)
			if err != nil {
				return nil, err
			}
			out = append(out, func(c *LCtx) {
				c.OpsExecuted++
				if cond(c.PHV).Bool() {
					runOps(c, thenOps)
				} else {
					runOps(c, elseOps)
				}
			})

		case PushOp:
			src, err := lk.compileExpr(op.Src)
			if err != nil {
				return nil, err
			}
			start := arrays[op.Base]
			cnt := lk.intern(ArrayCount(op.Base))
			capN, ew := op.Cap, op.ElemWidth
			out = append(out, func(c *LCtx) {
				c.OpsExecuted++
				n := int(c.PHV[cnt].V)
				v := src(c.PHV)
				if n < capN {
					c.PHV[start+n] = B(ew, v.V)
					c.PHV[cnt] = B(8, uint64(n+1))
					return
				}
				// Full: shift out the oldest element.
				for i := 0; i+1 < capN; i++ {
					c.PHV[start+i] = c.PHV[start+i+1]
				}
				c.PHV[start+capN-1] = B(ew, v.V)
			})

		case SetSlotOp:
			idx, err := lk.compileExpr(op.Index)
			if err != nil {
				return nil, err
			}
			src, err := lk.compileExpr(op.Src)
			if err != nil {
				return nil, err
			}
			start := arrays[op.Base]
			cnt := lk.intern(ArrayCount(op.Base))
			capN, ew := op.Cap, op.ElemWidth
			out = append(out, func(c *LCtx) {
				c.OpsExecuted++
				i := int(idx(c.PHV).V)
				if i < 0 || i >= capN {
					return // out-of-range writes are dropped, as on hardware
				}
				v := src(c.PHV)
				c.PHV[start+i] = B(ew, v.V)
				if n := int(c.PHV[cnt].V); i >= n {
					c.PHV[cnt] = B(8, uint64(i+1))
				}
			})

		case ReportOp:
			args := make([]linkedExpr, len(op.Args))
			for i, a := range op.Args {
				f, err := lk.compileExpr(a)
				if err != nil {
					return nil, err
				}
				args[i] = f
			}
			out = append(out, func(c *LCtx) {
				c.OpsExecuted++
				var vals []Value
				if c.ephemeral {
					// Arena growth may move earlier reports' Args to a
					// stale array — their values stay intact, so reads
					// remain correct; the arena converges after warmup.
					off := len(c.argArena)
					for _, a := range args {
						c.argArena = append(c.argArena, a(c.PHV))
					}
					vals = c.argArena[off:len(c.argArena):len(c.argArena)]
				} else {
					vals = make([]Value, len(args))
					for i, a := range args {
						vals[i] = a(c.PHV)
					}
				}
				c.Reports = append(c.Reports, Report{Args: vals})
			})

		default:
			return nil, fmt.Errorf("pipeline: link: unknown op %T", op)
		}
	}
	return out, nil
}

func (lk *Linked) tableIndex(name string) (int, *TableSpec, error) {
	for i := range lk.Prog.Tables {
		if lk.Prog.Tables[i].Name == name {
			return i, &lk.Prog.Tables[i], nil
		}
	}
	return 0, nil, fmt.Errorf("pipeline: apply of undeclared table %q", name)
}

func (lk *Linked) regIndex(name string) (int, error) {
	for i := range lk.Prog.Registers {
		if lk.Prog.Registers[i].Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("pipeline: access to undeclared register %q", name)
}

func (lk *Linked) compileApply(op ApplyOp) (linkedOp, error) {
	ti, spec, err := lk.tableIndex(op.Table)
	if err != nil {
		return nil, err
	}
	keys := make([]linkedExpr, len(op.Keys))
	for i, k := range op.Keys {
		f, err := lk.compileExpr(k)
		if err != nil {
			return nil, err
		}
		keys[i] = f
	}
	outSlots := make([]int, len(spec.Outputs))
	for i, o := range spec.Outputs {
		outSlots[i] = lk.intern(o)
	}
	hit := lk.intern(FieldRef(spec.Name + ".$hit"))
	name := op.Table

	allExact := true
	for _, k := range spec.Keys {
		if k.Kind != MatchExact {
			allExact = false
		}
	}
	packable := len(op.Keys) <= MaxPackedKeys && len(spec.Keys) <= MaxPackedKeys

	writeOut := func(c *LCtx, action []Value, hitV bool) {
		for i, s := range outSlots {
			c.PHV[s] = action[i]
		}
		c.PHV[hit] = BoolV(hitV)
		c.TableApplies++
	}

	switch {
	case packable && allExact:
		// Exact fast path: packed stack key, O(1) map hit, no locks
		// beyond the table's RWMutex, no allocation.
		return func(c *LCtx) {
			c.OpsExecuted++
			t := c.State.tableAt(ti, name)
			var k PackedKey
			for i, f := range keys {
				k[i] = f(c.PHV).V
			}
			action, hitV := t.LookupPacked(k)
			writeOut(c, action, hitV)
		}, nil

	case packable:
		// TCAM path with a per-context cache, invalidated by table
		// identity + version.
		cacheIdx := lk.nCaches
		lk.nCaches++
		return func(c *LCtx) {
			c.OpsExecuted++
			t := c.State.tableAt(ti, name)
			var k PackedKey
			for i, f := range keys {
				k[i] = f(c.PHV).V
			}
			cache := &c.caches[cacheIdx]
			if ver := t.Version(); cache.table != t || cache.version != ver {
				cache.table, cache.version = t, ver
				if cache.m == nil {
					cache.m = make(map[PackedKey]cacheEnt, 16)
				} else {
					clear(cache.m)
				}
			}
			ce, ok := cache.m[k]
			if !ok {
				ce.action, ce.hit = t.LookupPacked(k)
				if len(cache.m) < maxCacheEntries {
					cache.m[k] = ce
				}
			}
			writeOut(c, ce.action, ce.hit)
		}, nil

	default:
		// Wide keys (> MaxPackedKeys columns): generic slice path,
		// through the context's reusable key buffer.
		nk := len(keys)
		return func(c *LCtx) {
			c.OpsExecuted++
			t := c.State.tableAt(ti, name)
			if cap(c.wide) < nk {
				c.wide = make([]uint64, nk)
			}
			kv := c.wide[:nk]
			for i, f := range keys {
				kv[i] = f(c.PHV).V
			}
			action, hitV := t.Lookup(kv)
			writeOut(c, action, hitV)
		}, nil
	}
}

// ---------------------------------------------------------------------------
// Expr compilation

func (lk *Linked) compileExpr(e Expr) (linkedExpr, error) {
	switch e := e.(type) {
	case Field:
		slot, w := lk.intern(e.Ref), e.Width
		return func(phv []Value) Value {
			v := phv[slot]
			if v.W == 0 {
				return Value{W: w}
			}
			return v
		}, nil

	case Const:
		v := e.Val
		return func([]Value) Value { return v }, nil

	case Unary:
		x, err := lk.compileExpr(e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case OpNot:
			return func(phv []Value) Value { return BoolV(!x(phv).Bool()) }, nil
		case OpBNot:
			return func(phv []Value) Value { v := x(phv); return B(v.W, ^v.V) }, nil
		case OpNeg:
			return func(phv []Value) Value { v := x(phv); return B(v.W, -v.V) }, nil
		case OpAbs:
			return func(phv []Value) Value {
				v := x(phv)
				s := v.Signed()
				if s < 0 {
					s = -s
				}
				return B(v.W, uint64(s))
			}, nil
		}
		return nil, fmt.Errorf("pipeline: link: bad unary opcode %s", e.Op)

	case Bin:
		x, err := lk.compileExpr(e.X)
		if err != nil {
			return nil, err
		}
		y, err := lk.compileExpr(e.Y)
		if err != nil {
			return nil, err
		}
		return compileBin(e.Op, x, y)

	case Mux:
		cond, err := lk.compileExpr(e.Cond)
		if err != nil {
			return nil, err
		}
		x, err := lk.compileExpr(e.X)
		if err != nil {
			return nil, err
		}
		y, err := lk.compileExpr(e.Y)
		if err != nil {
			return nil, err
		}
		return func(phv []Value) Value {
			if cond(phv).Bool() {
				return x(phv)
			}
			return y(phv)
		}, nil
	}
	return nil, fmt.Errorf("pipeline: link: unknown expr %T", e)
}

// binWidth reconciles operand widths the way Bin.Eval does: a width-0
// (unset/weak) side adopts the other side's width.
func binWidth(x, y Value) int {
	if x.W != 0 {
		return x.W
	}
	return y.W
}

func compileBin(op OpCode, x, y linkedExpr) (linkedExpr, error) {
	switch op {
	case OpLAnd:
		return func(phv []Value) Value {
			if !x(phv).Bool() {
				return BoolV(false)
			}
			return BoolV(y(phv).Bool())
		}, nil
	case OpLOr:
		return func(phv []Value) Value {
			if x(phv).Bool() {
				return BoolV(true)
			}
			return BoolV(y(phv).Bool())
		}, nil
	case OpAdd:
		return func(phv []Value) Value {
			xv, yv := x(phv), y(phv)
			return B(binWidth(xv, yv), xv.V+yv.V)
		}, nil
	case OpSub:
		return func(phv []Value) Value {
			xv, yv := x(phv), y(phv)
			return B(binWidth(xv, yv), xv.V-yv.V)
		}, nil
	case OpMul:
		return func(phv []Value) Value {
			xv, yv := x(phv), y(phv)
			return B(binWidth(xv, yv), xv.V*yv.V)
		}, nil
	case OpDiv:
		return func(phv []Value) Value {
			xv, yv := x(phv), y(phv)
			if yv.V == 0 {
				return B(binWidth(xv, yv), 0)
			}
			return B(binWidth(xv, yv), xv.V/yv.V)
		}, nil
	case OpMod:
		return func(phv []Value) Value {
			xv, yv := x(phv), y(phv)
			if yv.V == 0 {
				return B(binWidth(xv, yv), 0)
			}
			return B(binWidth(xv, yv), xv.V%yv.V)
		}, nil
	case OpBAnd:
		return func(phv []Value) Value {
			xv, yv := x(phv), y(phv)
			return B(binWidth(xv, yv), xv.V&yv.V)
		}, nil
	case OpBOr:
		return func(phv []Value) Value {
			xv, yv := x(phv), y(phv)
			return B(binWidth(xv, yv), xv.V|yv.V)
		}, nil
	case OpBXor:
		return func(phv []Value) Value {
			xv, yv := x(phv), y(phv)
			return B(binWidth(xv, yv), xv.V^yv.V)
		}, nil
	case OpShl:
		return func(phv []Value) Value {
			xv, yv := x(phv), y(phv)
			if yv.V >= 64 {
				return B(binWidth(xv, yv), 0)
			}
			return B(binWidth(xv, yv), xv.V<<yv.V)
		}, nil
	case OpShr:
		return func(phv []Value) Value {
			xv, yv := x(phv), y(phv)
			if yv.V >= 64 {
				return B(binWidth(xv, yv), 0)
			}
			return B(binWidth(xv, yv), xv.V>>yv.V)
		}, nil
	case OpEq:
		return func(phv []Value) Value { return BoolV(x(phv).V == y(phv).V) }, nil
	case OpNe:
		return func(phv []Value) Value { return BoolV(x(phv).V != y(phv).V) }, nil
	case OpLt:
		return func(phv []Value) Value { return BoolV(x(phv).V < y(phv).V) }, nil
	case OpLe:
		return func(phv []Value) Value { return BoolV(x(phv).V <= y(phv).V) }, nil
	case OpGt:
		return func(phv []Value) Value { return BoolV(x(phv).V > y(phv).V) }, nil
	case OpGe:
		return func(phv []Value) Value { return BoolV(x(phv).V >= y(phv).V) }, nil
	case OpMax:
		return func(phv []Value) Value {
			xv, yv := x(phv), y(phv)
			if xv.V >= yv.V {
				return B(binWidth(xv, yv), xv.V)
			}
			return B(binWidth(xv, yv), yv.V)
		}, nil
	case OpMin:
		return func(phv []Value) Value {
			xv, yv := x(phv), y(phv)
			if xv.V <= yv.V {
				return B(binWidth(xv, yv), xv.V)
			}
			return B(binWidth(xv, yv), yv.V)
		}, nil
	}
	return nil, fmt.Errorf("pipeline: link: bad binary opcode %s", op)
}
