package pipeline

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestValueBasics(t *testing.T) {
	if v := B(8, 300); v.V != 44 {
		t.Fatalf("mask: %d", v.V)
	}
	if !BoolV(true).Bool() || BoolV(false).Bool() {
		t.Fatal("BoolV")
	}
	if got := B(8, 0xFE).Signed(); got != -2 {
		t.Fatalf("signed: %d", got)
	}
	if got := B(8, 0x7F).Signed(); got != 127 {
		t.Fatalf("signed positive: %d", got)
	}
	if got := B(64, 5).Signed(); got != 5 {
		t.Fatalf("signed 64: %d", got)
	}
}

func TestExprEval(t *testing.T) {
	phv := PHV{"x": B(8, 200), "y": B(8, 100), "b": BoolV(true)}
	tests := []struct {
		name string
		e    Expr
		want uint64
	}{
		{"add wraps", Bin{Op: OpAdd, X: Field{Ref: "x", Width: 8}, Y: Field{Ref: "y", Width: 8}}, 44},
		{"sub wraps", Bin{Op: OpSub, X: Field{Ref: "y", Width: 8}, Y: Field{Ref: "x", Width: 8}}, 156},
		{"div by zero", Bin{Op: OpDiv, X: Field{Ref: "x", Width: 8}, Y: C(8, 0)}, 0},
		{"mod by zero", Bin{Op: OpMod, X: Field{Ref: "x", Width: 8}, Y: C(8, 0)}, 0},
		{"abs negative", Unary{Op: OpAbs, X: Bin{Op: OpSub, X: Field{Ref: "y", Width: 8}, Y: Field{Ref: "x", Width: 8}}}, 100},
		{"lt", Bin{Op: OpLt, X: Field{Ref: "y", Width: 8}, Y: Field{Ref: "x", Width: 8}}, 1},
		{"max", Bin{Op: OpMax, X: Field{Ref: "x", Width: 8}, Y: Field{Ref: "y", Width: 8}}, 200},
		{"min", Bin{Op: OpMin, X: Field{Ref: "x", Width: 8}, Y: Field{Ref: "y", Width: 8}}, 100},
		{"mux true", Mux{Cond: Field{Ref: "b", Width: 1}, X: C(8, 7), Y: C(8, 9)}, 7},
		{"not", Unary{Op: OpNot, X: Field{Ref: "b", Width: 1}}, 0},
		{"bnot", Unary{Op: OpBNot, X: C(8, 0x0F)}, 0xF0},
		{"shl", Bin{Op: OpShl, X: C(8, 1), Y: C(8, 3)}, 8},
		{"shr overflow", Bin{Op: OpShr, X: C(8, 255), Y: C(8, 70)}, 0},
		{"unset field is zero", Field{Ref: "nope", Width: 16}, 0},
	}
	for _, tt := range tests {
		if got := tt.e.Eval(phv); got.V != tt.want {
			t.Errorf("%s: got %d, want %d", tt.name, got.V, tt.want)
		}
	}
}

func TestShortCircuitEval(t *testing.T) {
	// The Y side of a && must not be evaluated when X is false; we detect
	// evaluation through a panicking expression.
	bomb := panicExpr{}
	e := Bin{Op: OpLAnd, X: C(1, 0), Y: bomb}
	if e.Eval(PHV{}).Bool() {
		t.Fatal("false && _ must be false")
	}
	e2 := Bin{Op: OpLOr, X: C(1, 1), Y: bomb}
	if !e2.Eval(PHV{}).Bool() {
		t.Fatal("true || _ must be true")
	}
}

type panicExpr struct{}

func (panicExpr) Eval(PHV) Value { panic("must not be evaluated") }
func (panicExpr) String() string { return "bomb" }

func TestExactTable(t *testing.T) {
	tbl := NewTable("tenants",
		[]KeySpec{{Name: "port", Width: 8, Kind: MatchExact}},
		[]FieldRef{"ctrl.tenants"},
		[]Value{B(8, 0)})
	if err := tbl.Insert(Entry{Keys: []KeyMatch{ExactKey(1)}, Action: []Value{B(8, 10)}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Entry{Keys: []KeyMatch{ExactKey(2)}, Action: []Value{B(8, 20)}}); err != nil {
		t.Fatal(err)
	}
	if v, hit := tbl.Lookup([]uint64{1}); !hit || v[0].V != 10 {
		t.Fatalf("lookup 1: %v %v", v, hit)
	}
	if v, hit := tbl.Lookup([]uint64{9}); hit || v[0].V != 0 {
		t.Fatalf("miss should return default: %v %v", v, hit)
	}
	// Replacement by key.
	if err := tbl.Insert(Entry{Keys: []KeyMatch{ExactKey(1)}, Action: []Value{B(8, 11)}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Lookup([]uint64{1}); v[0].V != 11 {
		t.Fatalf("replace failed: %v", v)
	}
	if tbl.Len() != 2 {
		t.Fatalf("len = %d", tbl.Len())
	}
	if n := tbl.Delete([]KeyMatch{ExactKey(1)}); n != 1 {
		t.Fatalf("delete = %d", n)
	}
	if _, hit := tbl.Lookup([]uint64{1}); hit {
		t.Fatal("deleted entry still hits")
	}
}

func TestExactTableRejectsWildcard(t *testing.T) {
	tbl := NewTable("t", []KeySpec{{Width: 8, Kind: MatchExact}}, nil, nil)
	if err := tbl.Insert(Entry{Keys: []KeyMatch{AnyKey()}}); err == nil {
		t.Fatal("wildcard in exact column must be rejected")
	}
}

func TestTernaryPriorityTable(t *testing.T) {
	// Mirrors the Figure 11 Applications table: ipv4 lpm + l4 range +
	// proto exact, with priorities.
	tbl := NewTable("applications",
		[]KeySpec{
			{Name: "ipv4", Width: 32, Kind: MatchLPM},
			{Name: "l4", Width: 16, Kind: MatchRange},
			{Name: "proto", Width: 8, Kind: MatchTernary},
		},
		[]FieldRef{"app_id"},
		[]Value{B(8, 0)})

	const udp = 17
	must := func(e Entry) {
		t.Helper()
		if err := tbl.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	// prio 10: any/any/any -> app 1 (default deny bucket)
	must(Entry{Priority: 10, Keys: []KeyMatch{AnyKey(), AnyKey(), AnyKey()}, Action: []Value{B(8, 1)}})
	// prio 20: any, 81-81, udp -> app 2
	must(Entry{Priority: 20, Keys: []KeyMatch{AnyKey(), RangeKey(81, 81), TernaryKey(udp, 0xff)}, Action: []Value{B(8, 2)}})
	// prio 25: any, 81-82, udp -> app 3
	must(Entry{Priority: 25, Keys: []KeyMatch{AnyKey(), RangeKey(81, 82), TernaryKey(udp, 0xff)}, Action: []Value{B(8, 3)}})

	if v, _ := tbl.Lookup([]uint64{0x0a000001, 80, udp}); v[0].V != 1 {
		t.Fatalf("port 80 -> app %d, want 1", v[0].V)
	}
	// Higher priority 81-82 entry shadows the 81-81 entry.
	if v, _ := tbl.Lookup([]uint64{0x0a000001, 81, udp}); v[0].V != 3 {
		t.Fatalf("port 81 -> app %d, want 3 (shadowed by higher priority)", v[0].V)
	}
	if v, _ := tbl.Lookup([]uint64{0x0a000001, 82, udp}); v[0].V != 3 {
		t.Fatalf("port 82 -> app %d, want 3", v[0].V)
	}
	// TCP port 81 only matches the any/any/any entry.
	if v, _ := tbl.Lookup([]uint64{0x0a000001, 81, 6}); v[0].V != 1 {
		t.Fatalf("tcp 81 -> app %d, want 1", v[0].V)
	}
}

func TestLPMSpecificity(t *testing.T) {
	tbl := NewTable("routes",
		[]KeySpec{{Name: "dst", Width: 32, Kind: MatchLPM}},
		[]FieldRef{"next"},
		[]Value{B(8, 0)})
	must := func(e Entry) {
		t.Helper()
		if err := tbl.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	must(Entry{Keys: []KeyMatch{PrefixKey(0x0a000000, 8)}, Action: []Value{B(8, 1)}})
	must(Entry{Keys: []KeyMatch{PrefixKey(0x0a0a0000, 16)}, Action: []Value{B(8, 2)}})
	must(Entry{Keys: []KeyMatch{PrefixKey(0x0a0a0a00, 24)}, Action: []Value{B(8, 3)}})

	cases := []struct {
		ip   uint64
		want uint64
	}{
		{0x0a010101, 1},
		{0x0a0a0101, 2},
		{0x0a0a0a01, 3},
	}
	for _, c := range cases {
		if v, hit := tbl.Lookup([]uint64{c.ip}); !hit || v[0].V != c.want {
			t.Errorf("ip %08x -> %d (hit=%v), want %d", c.ip, v[0].V, hit, c.want)
		}
	}
	if _, hit := tbl.Lookup([]uint64{0x0b000000}); hit {
		t.Error("unrelated prefix must miss")
	}
}

func TestRegister(t *testing.T) {
	r := NewRegister("load", 16, 4)
	r.Write(2, 0x1FFFF) // masked to 16 bits
	if got := r.Read(2); got != 0xFFFF {
		t.Fatalf("read = %x", got)
	}
	if got := r.Read(99); got != 0 {
		t.Fatal("out-of-range read must be zero")
	}
	r.Write(99, 1) // dropped
	r.Reset()
	if r.Read(2) != 0 {
		t.Fatal("reset failed")
	}
}

func TestRegisterConcurrency(t *testing.T) {
	r := NewRegister("ctr", 64, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Write(0, r.Read(0)+1) // racy increment; must not panic under -race
			}
		}()
	}
	wg.Wait()
}

func TestTableConcurrentUpdateAndLookup(t *testing.T) {
	tbl := NewTable("t", []KeySpec{{Width: 8, Kind: MatchExact}}, []FieldRef{"v"}, []Value{B(8, 0)})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = tbl.Insert(Entry{Keys: []KeyMatch{ExactKey(uint64(i % 16))}, Action: []Value{B(8, uint64(i))}})
		}
	}()
	for i := 0; i < 10000; i++ {
		tbl.Lookup([]uint64{uint64(i % 16)})
	}
	close(stop)
	wg.Wait()
	before := tbl.Version()
	_ = tbl.Insert(Entry{Keys: []KeyMatch{ExactKey(1)}, Action: []Value{B(8, 1)}})
	if tbl.Version() != before+1 {
		t.Fatal("version must advance on mutation")
	}
}

func TestExecOps(t *testing.T) {
	prog := &Program{
		Tables: []TableSpec{{
			Name:         "tenants",
			Keys:         []KeySpec{{Name: "port", Width: 8, Kind: MatchExact}},
			Outputs:      []FieldRef{"ctrl.tenants"},
			OutputWidths: []int{8},
			Default:      []Value{B(8, 0)},
		}},
		Registers: []RegisterSpec{{Name: "count", Width: 32, Size: 1}},
	}
	st := prog.NewState()
	if err := st.Tables["tenants"].Insert(Entry{Keys: []KeyMatch{ExactKey(3)}, Action: []Value{B(8, 42)}}); err != nil {
		t.Fatal(err)
	}

	phv := PHV{"port": B(8, 3)}
	ctx := &ExecContext{PHV: phv, State: st}
	ops := []Op{
		ApplyOp{Table: "tenants", Keys: []Expr{Field{Ref: "port", Width: 8}}},
		AssignOp{Dst: "x", DstWidth: 8, Src: Field{Ref: "ctrl.tenants", Width: 8}},
		RegReadOp{Reg: "count", Index: C(32, 0), Dst: "c", Width: 32},
		RegWriteOp{Reg: "count", Index: C(32, 0), Src: Bin{Op: OpAdd, X: Field{Ref: "c", Width: 32}, Y: C(32, 1)}},
		IfOp{
			Cond: Bin{Op: OpEq, X: Field{Ref: "x", Width: 8}, Y: C(8, 42)},
			Then: []Op{ReportOp{Args: []Expr{Field{Ref: "x", Width: 8}}}},
			Else: []Op{AssignOp{Dst: FieldReject, DstWidth: 1, Src: C(1, 1)}},
		},
	}
	if err := ctx.Exec(ops); err != nil {
		t.Fatal(err)
	}
	if phv.Get("x").V != 42 {
		t.Fatalf("x = %d", phv.Get("x").V)
	}
	if !phv.Get("tenants.$hit").Bool() {
		t.Fatal("hit flag not set")
	}
	if st.Registers["count"].Read(0) != 1 {
		t.Fatal("register increment lost")
	}
	if len(ctx.Reports) != 1 || ctx.Reports[0].Args[0].V != 42 {
		t.Fatalf("reports: %+v", ctx.Reports)
	}
	if phv.Get(FieldReject).Bool() {
		t.Fatal("else branch must not run")
	}
	if ctx.TableApplies != 1 {
		t.Fatalf("TableApplies = %d", ctx.TableApplies)
	}
}

func TestPushOpEviction(t *testing.T) {
	ctx := &ExecContext{PHV: PHV{}, State: &State{}}
	push := func(v uint64) {
		if err := ctx.Exec([]Op{PushOp{Base: "a", ElemWidth: 8, Cap: 2, Src: C(8, v)}}); err != nil {
			t.Fatal(err)
		}
	}
	push(1)
	push(2)
	push(3)
	if got := ctx.PHV.Get(ArrayCount("a")).V; got != 2 {
		t.Fatalf("count = %d", got)
	}
	if ctx.PHV.Get(ArraySlot("a", 0)).V != 2 || ctx.PHV.Get(ArraySlot("a", 1)).V != 3 {
		t.Fatalf("slots: %v %v", ctx.PHV.Get(ArraySlot("a", 0)), ctx.PHV.Get(ArraySlot("a", 1)))
	}
}

func TestSetSlotOp(t *testing.T) {
	ctx := &ExecContext{PHV: PHV{}, State: &State{}}
	ops := []Op{
		SetSlotOp{Base: "a", ElemWidth: 8, Cap: 4, Index: C(8, 2), Src: C(8, 9)},
		SetSlotOp{Base: "a", ElemWidth: 8, Cap: 4, Index: C(8, 9), Src: C(8, 1)}, // dropped
	}
	if err := ctx.Exec(ops); err != nil {
		t.Fatal(err)
	}
	if ctx.PHV.Get(ArraySlot("a", 2)).V != 9 {
		t.Fatal("slot write lost")
	}
	if ctx.PHV.Get(ArrayCount("a")).V != 3 {
		t.Fatalf("count = %d, want 3", ctx.PHV.Get(ArrayCount("a")).V)
	}
}

func TestExecErrors(t *testing.T) {
	ctx := &ExecContext{PHV: PHV{}, State: &State{Tables: map[string]*Table{}, Registers: map[string]*Register{}}}
	if err := ctx.Exec([]Op{ApplyOp{Table: "missing"}}); err == nil {
		t.Fatal("apply of undeclared table must error")
	}
	if err := ctx.Exec([]Op{RegReadOp{Reg: "missing", Index: C(8, 0), Dst: "x"}}); err == nil {
		t.Fatal("read of undeclared register must error")
	}
	if err := ctx.Exec([]Op{RegWriteOp{Reg: "missing", Index: C(8, 0), Src: C(8, 0)}}); err == nil {
		t.Fatal("write to undeclared register must error")
	}
}

// Property: table lookup with random exact entries behaves like a map.
func TestExactTableMapEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := NewTable("t", []KeySpec{{Width: 16, Kind: MatchExact}}, []FieldRef{"v"}, []Value{B(16, 0)})
		model := map[uint64]uint64{}
		for i := 0; i < 50; i++ {
			k, v := uint64(rng.Intn(32)), uint64(rng.Intn(1000))
			if rng.Intn(4) == 0 {
				tbl.Delete([]KeyMatch{ExactKey(k)})
				delete(model, k)
				continue
			}
			if err := tbl.Insert(Entry{Keys: []KeyMatch{ExactKey(k)}, Action: []Value{B(16, v)}}); err != nil {
				return false
			}
			model[k] = Mask(16, v)
		}
		for k := uint64(0); k < 32; k++ {
			v, hit := tbl.Lookup([]uint64{k})
			mv, ok := model[k]
			if hit != ok {
				return false
			}
			if hit && v[0].V != mv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
