package atoms

import (
	"math/rand"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netsim"
)

// podPrefix is pod p's /16 (10.<p>.0.0), the prefix the cores route on.
func podPrefix(p int) dataplane.IP4 { return dataplane.IP4(uint32(10)<<24 | uint32(p)<<16) }

func watchFatTree(t *testing.T, k int) (*netsim.FatTree, *Verifier) {
	t.Helper()
	sim := netsim.NewSimulator()
	ft := netsim.BuildFatTree(sim, netsim.FatTreeConfig{K: k, WithRouting: true})
	v := New()
	WatchFabric(v, ft.AllSwitches())
	half := k / 2
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				v.ExpectHost(netsim.FatTreeHostIP(p, e, h))
			}
		}
	}
	return ft, v
}

// TestFatTreeGolden is the k=8 routing-correctness golden: the standard
// two-level InstallRouting tables are loop-free and deliver every one of
// the 128 hosts from every edge switch — zero static violations.
func TestFatTreeGolden(t *testing.T) {
	_, v := watchFatTree(t, 8)
	if out := v.Outstanding(); len(out) != 0 {
		t.Fatalf("k=8 fat-tree routing has %d static violations; first: %v", len(out), out[0])
	}
	st := v.Stats()
	if st.Switches != 80 {
		t.Errorf("verifier saw %d switches, want 80", st.Switches)
	}
	// 128 host /32s + 32 pod /24 boundaries (shared with the /32 spans)
	// + 8 /16s: the partition is fabric-sized, not address-space-sized.
	if st.Atoms < 100 || st.Atoms > 400 {
		t.Errorf("k=8 fat-tree settled at %d atoms, expected a few hundred", st.Atoms)
	}
	if st.Routes == 0 || st.Updates == 0 {
		t.Errorf("route replay did not reach the verifier: %+v", st)
	}
}

// TestLeafSpineGolden: the campus (leaf-spine) fabric's InstallRouting
// is clean under the same full expectations — the zero-false-positive
// baseline for the chaos static layer.
func TestLeafSpineGolden(t *testing.T) {
	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2, WithRouting: true,
	})
	v := New()
	WatchFabric(v, ls.AllSwitches())
	for l := range ls.Hosts {
		for h := range ls.Hosts[l] {
			v.ExpectHost(netsim.HostIP(l, h))
		}
	}
	if out := v.Outstanding(); len(out) != 0 {
		t.Fatalf("leaf-spine routing has static violations: %v", out)
	}
}

// TestFatTreeIncremental pins the Delta-net claim the bench guard also
// leans on: a single host-route update on the settled k=8 fabric
// rechecks only the atoms the prefix covers, not the whole partition.
func TestFatTreeIncremental(t *testing.T) {
	ft, v := watchFatTree(t, 8)
	total := v.Stats().Atoms

	prog := ft.Edge[0][0].Forwarding.(*netsim.L3Program)
	hostIP := netsim.FatTreeHostIP(0, 0, 0)

	if !prog.RemoveRoute(hostIP, 32) {
		t.Fatal("host /32 not installed")
	}
	before := v.Stats()
	prog.AddRoute(hostIP, 32, 1)
	delta := v.Stats().Rechecks - before.Rechecks
	if delta == 0 || delta > 2 {
		t.Errorf("re-adding a /32 rechecked %d atoms (of %d), want 1-2", delta, total)
	}
	if out := v.Outstanding(); len(out) != 0 {
		t.Fatalf("clean churn left violations: %v", out)
	}
}

// TestFatTreePerturbations is the seeded property test: random
// single-fault perturbations of the k=8 route tables (withdrawn host
// routes, withdrawn core routes, misrouted core and edge entries) must
// each raise at least one static violation covering the victim address,
// and undoing the perturbation must clear it.
func TestFatTreePerturbations(t *testing.T) {
	ft, v := watchFatTree(t, 8)
	k, half := 8, 4
	rng := rand.New(rand.NewSource(11))

	assertFlagged := func(victim uint32, what string) {
		t.Helper()
		for _, x := range v.Outstanding() {
			if uint32(x.Lo) <= victim && victim <= uint32(x.Hi) {
				return
			}
		}
		t.Fatalf("%s: no static violation covers victim %d.%d.%d.%d; outstanding: %v",
			what, victim>>24&0xff, victim>>16&0xff, victim>>8&0xff, victim&0xff, v.Outstanding())
	}
	assertClean := func(what string) {
		t.Helper()
		if out := v.Outstanding(); len(out) != 0 {
			t.Fatalf("%s: violations remain after undo: %v", what, out)
		}
	}

	for trial := 0; trial < 40; trial++ {
		p, e, h := rng.Intn(k), rng.Intn(half), rng.Intn(half)
		victim := uint32(netsim.FatTreeHostIP(p, e, h))
		switch trial % 4 {
		case 0:
			// Withdraw a host /32: the edge's own-/24 discard route takes
			// over the host's atom — blackhole at the edge.
			prog := ft.Edge[p][e].Forwarding.(*netsim.L3Program)
			prog.RemoveRoute(netsim.FatTreeHostIP(p, e, h), 32)
			assertFlagged(victim, "withdrawn /32")
			prog.AddRoute(netsim.FatTreeHostIP(p, e, h), 32, h+1)
			assertClean("withdrawn /32")
		case 1:
			// Withdraw a core's pod /16: inter-pod traffic for p dies at
			// that core — blackhole.
			g, j := rng.Intn(half), rng.Intn(half)
			prog := ft.Core[g][j].Forwarding.(*netsim.L3Program)
			prog.RemoveRoute(podPrefix(p), 16)
			assertFlagged(victim, "withdrawn /16")
			prog.AddRoute(podPrefix(p), 16, p+1)
			assertClean("withdrawn /16")
		case 2:
			// Misroute a core's pod /16 to another pod: the wrong pod's
			// agg defaults back up to the same core — loop.
			g, j := rng.Intn(half), rng.Intn(half)
			wrong := (p+1)%k + 1
			prog := ft.Core[g][j].Forwarding.(*netsim.L3Program)
			prog.AddRoute(podPrefix(p), 16, wrong)
			assertFlagged(victim, "misrouted /16")
			prog.AddRoute(podPrefix(p), 16, p+1)
			assertClean("misrouted /16")
		case 3:
			// Point the host /32 at a sibling host's port: misdelivery.
			prog := ft.Edge[p][e].Forwarding.(*netsim.L3Program)
			prog.AddRoute(netsim.FatTreeHostIP(p, e, h), 32, (h+1)%half+1)
			assertFlagged(victim, "misrouted /32")
			prog.AddRoute(netsim.FatTreeHostIP(p, e, h), 32, h+1)
			assertClean("misrouted /32")
		}
	}
}
