package atoms

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/reportbus"
)

func ip(s string) dataplane.IP4 { return dataplane.MustIP4(s) }

// triangle builds a 3-switch ring 1->2->3->1 on port 1, with a host on
// port 9 of each switch, ready for loop/delivery scenarios.
func triangle() *Verifier {
	v := New()
	v.Connect(1, 1, 2, 2)
	v.Connect(2, 1, 3, 2)
	v.Connect(3, 1, 1, 2)
	v.AttachHost(1, 9, ip("10.0.0.1"))
	v.AttachHost(2, 9, ip("10.0.0.2"))
	v.AttachHost(3, 9, ip("10.0.0.3"))
	return v
}

func TestAtomSplitting(t *testing.T) {
	v := New()
	if got := len(v.atos); got != 1 {
		t.Fatalf("fresh verifier has %d atoms, want 1", got)
	}
	u := v.Install(1, ip("10.0.0.0"), 8, []int{1})
	if u.Split != 2 {
		t.Errorf("/8 install split %d atoms, want 2 (both endpoints interior)", u.Split)
	}
	if got := len(v.atos); got != 3 {
		t.Fatalf("%d atoms after /8, want 3", got)
	}
	// A /16 inside the /8 splits twice more; re-installing it splits
	// nothing (boundaries exist, key is replaced in place).
	v.Install(1, ip("10.1.0.0"), 16, []int{2})
	if got := len(v.atos); got != 5 {
		t.Fatalf("%d atoms after /16, want 5", got)
	}
	u = v.Install(1, ip("10.1.0.0"), 16, []int{3})
	if u.Split != 0 || len(v.atos) != 5 {
		t.Errorf("replacement split %d atoms (total %d), want 0 (total 5)", u.Split, len(v.atos))
	}
	// Atoms stay a contiguous cover of the space.
	var at uint64
	for _, a := range v.atos {
		if a.lo != at {
			t.Fatalf("atom gap: next lo %d, want %d", a.lo, at)
		}
		at = a.hi
	}
	if at != 1<<32 {
		t.Fatalf("atoms cover [0, %d), want [0, 2^32)", at)
	}
}

func TestLoopDetectionAndResolution(t *testing.T) {
	v := triangle()
	var raised, resolved []Violation
	v.OnViolation = func(x Violation) { raised = append(raised, x) }
	v.OnResolved = func(x Violation) { resolved = append(resolved, x) }

	v.Install(1, ip("10.0.0.0"), 24, []int{1})
	v.Install(2, ip("10.0.0.0"), 24, []int{1})
	if len(raised) != 0 {
		t.Fatalf("open chain raised %v", raised)
	}
	u := v.Install(3, ip("10.0.0.0"), 24, []int{1})
	if u.Raised != 1 || len(raised) != 1 || raised[0].Kind != KindLoop {
		t.Fatalf("closing the ring raised %v, want one loop", raised)
	}
	if got := raised[0]; got.Lo != ip("10.0.0.0") || got.Hi != ip("10.0.0.255") {
		t.Errorf("loop range [%s, %s], want the /24", got.Lo, got.Hi)
	}
	out := v.Outstanding()
	if len(out) != 1 || out[0].Kind != KindLoop {
		t.Fatalf("Outstanding = %v, want the one loop", out)
	}

	// Breaking the ring resolves it.
	u = v.Remove(2, ip("10.0.0.0"), 24)
	if u.Resolved != 1 || len(resolved) != 1 || resolved[0].Kind != KindLoop {
		t.Fatalf("breaking the ring resolved %v, want one loop", resolved)
	}
	if out := v.Outstanding(); len(out) != 0 {
		t.Fatalf("Outstanding after resolution = %v, want empty", out)
	}
}

func TestDeliveryChecks(t *testing.T) {
	v := triangle()
	host := ip("10.0.0.3")
	// 1 -> 2 -> 3 -> host on port 9.
	v.Install(1, host, 32, []int{1})
	v.Install(2, host, 32, []int{1})
	v.Install(3, host, 32, []int{9})
	if u := v.ExpectHost(host); u.Raised != 0 {
		t.Fatalf("healthy chain raised %d violations", u.Raised)
	}

	// Blackhole: switch 2 loses its route; paths from sources 1 and 2
	// now die at 2. (Switch 3 still delivers its own traffic.)
	v.Remove(2, host, 32)
	out := v.Outstanding()
	if len(out) != 1 || out[0].Kind != KindBlackhole || out[0].Switch != 2 || out[0].Host != host {
		t.Fatalf("Outstanding = %v, want one blackhole at switch 2 for %s", out, host)
	}
	if out[0].Lo != host || out[0].Hi != host {
		t.Errorf("blackhole range [%s, %s], want the single /32 atom", out[0].Lo, out[0].Hi)
	}

	// Misdelivery: switch 2 sends the host's traffic to its own host
	// port instead.
	v.Install(2, host, 32, []int{9})
	out = v.Outstanding()
	if len(out) != 1 || out[0].Kind != KindMisdeliver || out[0].Switch != 2 {
		t.Fatalf("Outstanding = %v, want one misdelivery at switch 2", out)
	}

	// Repair.
	v.Install(2, host, 32, []int{1})
	if out := v.Outstanding(); len(out) != 0 {
		t.Fatalf("Outstanding after repair = %v, want empty", out)
	}
}

// TestECMPAllPaths pins the all-paths semantics: one bad member of an
// ECMP port set is a violation even though the other members deliver.
func TestECMPAllPaths(t *testing.T) {
	v := New()
	v.Connect(1, 1, 2, 1)
	v.Connect(1, 2, 3, 1)
	v.AttachHost(1, 9, ip("10.0.0.1"))
	v.AttachHost(2, 9, ip("10.0.0.2"))
	host := ip("10.0.0.2")
	v.Install(1, host, 32, []int{1, 2}) // ECMP toward 2 (good) and 3 (routeless)
	v.Install(2, host, 32, []int{9})
	v.ExpectHost(host)
	out := v.Outstanding()
	if len(out) != 1 || out[0].Kind != KindBlackhole || out[0].Switch != 3 {
		t.Fatalf("Outstanding = %v, want one blackhole at the routeless ECMP branch", out)
	}
}

// TestNoExpectationNoReachabilityFP: without ExpectHost, routeless
// space is not a violation — only loops are unconditional.
func TestNoExpectationNoReachabilityFP(t *testing.T) {
	v := triangle()
	v.Install(1, ip("10.0.0.0"), 24, []int{1})
	// Switches 2 and 3 have no routes at all: dead ends everywhere, but
	// nothing is expected, so nothing is wrong.
	if out := v.Outstanding(); len(out) != 0 {
		t.Fatalf("Outstanding = %v, want empty without expectations", out)
	}
}

// TestRemoveFallback pins owner re-election: removing a /32 hands its
// atom to the covering /24, not to nothing.
func TestRemoveFallback(t *testing.T) {
	v := New()
	v.Connect(1, 1, 2, 1)
	v.AttachHost(1, 9, ip("10.0.1.1"))
	v.AttachHost(2, 9, ip("10.0.0.5"))
	host := ip("10.0.0.5")
	v.Install(1, ip("10.0.0.0"), 24, []int{1}) // covering route toward 2
	v.Install(1, host, 32, []int{1})
	v.Install(2, ip("10.0.0.0"), 24, []int{9})
	v.ExpectHost(host)
	if out := v.Outstanding(); len(out) != 0 {
		t.Fatalf("pre-removal Outstanding = %v", out)
	}
	v.Remove(1, host, 32)
	if out := v.Outstanding(); len(out) != 0 {
		t.Fatalf("post-removal Outstanding = %v, want empty (the /24 covers)", out)
	}
	// Removing the covering /24 too blackholes the host at switch 1.
	v.Remove(1, ip("10.0.0.0"), 24)
	out := v.Outstanding()
	if len(out) != 1 || out[0].Kind != KindBlackhole || out[0].Switch != 1 {
		t.Fatalf("Outstanding = %v, want one blackhole at switch 1", out)
	}
}

// TestOutstandingMergesAdjacentAtoms: a violation spanning several
// contiguous atoms reports as one merged range.
func TestOutstandingMergesAdjacentAtoms(t *testing.T) {
	v := triangle()
	// Split the /24 into pieces first, then close a ring over all of it.
	v.Install(1, ip("10.0.0.0"), 25, []int{1})
	v.Install(1, ip("10.0.0.128"), 25, []int{1})
	v.Install(2, ip("10.0.0.0"), 24, []int{1})
	v.Install(3, ip("10.0.0.0"), 24, []int{1})
	v.Install(1, ip("10.0.0.0"), 24, []int{1}) // owner for both /25 atoms stays the /25s
	out := v.Outstanding()
	if len(out) != 1 {
		t.Fatalf("Outstanding = %v, want one merged loop", out)
	}
	if out[0].Lo != ip("10.0.0.0") || out[0].Hi != ip("10.0.0.255") {
		t.Errorf("merged range [%s, %s], want the whole /24", out[0].Lo, out[0].Hi)
	}
}

// TestPublishDigests: raised violations flow onto the report bus as
// digests under the atoms checker ID, and a previously-set OnViolation
// callback still runs first.
func TestPublishDigests(t *testing.T) {
	v := triangle()
	var cbFirst []Violation
	v.OnViolation = func(x Violation) { cbFirst = append(cbFirst, x) }

	clock := int64(42)
	bus := reportbus.New(reportbus.Config{Clock: func() int64 { return clock }})
	var got []reportbus.Digest
	bus.Tap(func(d reportbus.Digest) { got = append(got, d) })
	Publish(v, bus.InlineProducer("static"), bus.Now)

	v.Install(1, ip("10.0.0.0"), 24, []int{1})
	v.Install(2, ip("10.0.0.0"), 24, []int{1})
	v.Install(3, ip("10.0.0.0"), 24, []int{1})
	if len(got) != 1 {
		t.Fatalf("published %d digests, want 1 (the loop)", len(got))
	}
	d := got[0]
	if d.Checker != CheckerID || d.At != clock {
		t.Errorf("digest provenance = (%s, %d), want (%s, %d)", d.Checker, d.At, CheckerID, clock)
	}
	if d.NArgs != 4 || d.Args[0] != uint64(KindLoop) ||
		d.Args[2] != uint64(ip("10.0.0.0")) || d.Args[3] != uint64(ip("10.0.0.255")) {
		t.Errorf("digest args = %v, want [kind host lo hi] for the /24 loop", d.Args[:d.NArgs])
	}
	if len(cbFirst) != 1 {
		t.Errorf("chained OnViolation ran %d times, want 1", len(cbFirst))
	}
}

// TestAuditMissing covers the control-variable audit: withheld installs
// are missing, applied ones are not, deletes reopen them.
func TestAuditMissing(t *testing.T) {
	a := NewAudit()
	key := []uint64{10, 20}
	a.Expect("stateful-firewall", "allowed", key, 1, 2, 3)
	if got := len(a.Missing()); got != 3 {
		t.Fatalf("%d missing before installs, want 3", got)
	}
	a.ControlInstalled("stateful-firewall", 1, "allowed", key, 1)
	a.ControlInstalled("stateful-firewall", 3, "allowed", key, 1)
	miss := a.Missing()
	if len(miss) != 1 || miss[0].Switch != 2 {
		t.Fatalf("Missing = %v, want only switch 2", miss)
	}
	a.ControlInstalled("stateful-firewall", 2, "allowed", key, 1)
	if got := a.Missing(); len(got) != 0 {
		t.Fatalf("Missing after full install = %v", got)
	}
	a.ControlDeleted("stateful-firewall", 1, "allowed", key)
	miss = a.Missing()
	if len(miss) != 1 || miss[0].Switch != 1 {
		t.Fatalf("Missing after delete = %v, want switch 1", miss)
	}
}
