package atoms

import "repro/internal/netsim"

// RouteChanged implements netsim.RouteWatcher: every FIB mutation on a
// watched switch becomes an incremental Install/Remove on the verifier.
func (v *Verifier) RouteChanged(ev netsim.RouteEvent) {
	switch ev.Op {
	case netsim.RouteAdd:
		v.Install(ev.Switch, ev.Prefix, ev.Bits, ev.Ports)
	case netsim.RouteRemove:
		v.Remove(ev.Switch, ev.Prefix, ev.Bits)
	}
}

// WatchFabric mirrors a netsim fabric into the verifier: it registers
// every switch, walks the wired links to build the topology model
// (switch-to-switch adjacency and host attachments), and subscribes to
// each switch's L3Program so existing routes replay and future
// mutations stream in incrementally.
//
// Call it after forwarding programs are assigned and before any fault
// layer wraps sw.Forwarding (the verifier models the control plane's
// intended FIB; runtime fault wrappers are the data plane's problem).
// Switches whose forwarding is not an L3Program get topology but no
// routes. Links to nodes outside sws are ignored.
func WatchFabric(v *Verifier, sws []*netsim.Switch) {
	for _, sw := range sws {
		v.AddSwitch(sw.ID)
	}
	for _, sw := range sws {
		si := v.idx[sw.ID]
		for _, port := range sw.Ports() {
			peer, _ := sw.Link(port).Peer(sw)
			switch p := peer.(type) {
			case *netsim.Switch:
				if pi, ok := v.idx[p.ID]; ok {
					v.sws[si].ports[port] = portDest{sw: pi}
				}
			case *netsim.Host:
				v.AttachHost(sw.ID, port, p.IP)
			}
		}
	}
	for _, sw := range sws {
		if prog, ok := sw.Forwarding.(*netsim.L3Program); ok {
			prog.Watch(sw.ID, v)
		}
	}
}
