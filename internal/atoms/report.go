package atoms

import (
	"repro/internal/pipeline"
	"repro/internal/reportbus"
)

// CheckerID is the reportbus checker name static violations are raised
// under — the control-plane verifier sits beside the runtime checkers
// on the same digest pipeline, distinguished only by this ID.
const CheckerID = "atoms"

// Digest converts a violation into a reportbus digest with args
// (kind, host, lo, hi); the switch rides in the digest's provenance.
func (x Violation) Digest(at int64) reportbus.Digest {
	return reportbus.DigestFrom(CheckerID, x.Switch, at, pipeline.Report{Args: []pipeline.Value{
		pipeline.B(8, uint64(x.Kind)),
		pipeline.B(32, uint64(x.Host)),
		pipeline.B(32, uint64(x.Lo)),
		pipeline.B(32, uint64(x.Hi)),
	}})
}

// Publish chains a reportbus producer onto the verifier's OnViolation
// callback: every raised violation is published as a digest stamped
// with clock(). Any previously-set callback still runs first.
func Publish(v *Verifier, p *reportbus.Producer, clock func() int64) {
	prev := v.OnViolation
	v.OnViolation = func(x Violation) {
		if prev != nil {
			prev(x)
		}
		p.Publish(x.Digest(clock()))
	}
}
