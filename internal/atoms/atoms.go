// Package atoms is the static half of the two-layer verification story:
// a Delta-net-style incremental control-plane verifier that rechecks
// network-wide invariants on every route mutation, in time proportional
// to the part of the header space the mutation touches.
//
// The IPv4 destination space [0, 2^32) is partitioned into *atoms* —
// disjoint half-open ranges whose boundaries are exactly the boundaries
// of every prefix ever installed. Within one atom, every switch forwards
// all addresses identically (its longest-prefix match is a single route
// entry), so invariants are properties of atoms, not of addresses: the
// atom's forwarding behavior is a tiny graph with one out-edge set per
// switch, and loop freedom, blackholes, reachability and misdelivery are
// graph checks over ~#switches nodes.
//
// Installing a prefix splits at most two atoms (at its endpoints) and
// contests ownership — by prefix length — of the atoms it covers;
// removing a route re-elects owners from the surviving table. Only the
// atoms whose owner actually changed are rechecked, which is what makes
// per-update verification cheap: a /32 host route touches one atom, and
// only a default route touches them all. Removals never merge atoms;
// boundaries are monotone, which keeps split bookkeeping trivial and is
// harmless at fabric scale (a k=8 fat-tree settles around 170 atoms).
//
// Violations are diffed per recheck: the verifier raises OnViolation
// when a (kind, switch, host) first appears in an atom and OnResolved
// when a recheck clears it, so a consumer sees install-time transitions,
// not steady-state noise. Outstanding() snapshots the current violation
// set with contiguous equal-key atom ranges merged back together.
//
// Reachability-style checks are opt-in per address: only hosts declared
// with ExpectHost are traced, which is what keeps the verifier
// false-positive-free on fabrics that legitimately blackhole unrouted
// space (a fat-tree core has no route for non-fabric prefixes, and that
// is correct, not a violation).
package atoms

import (
	"fmt"
	"sort"

	"repro/internal/dataplane"
)

// Kind classifies a violation.
type Kind uint8

const (
	// KindLoop: the atom's forwarding graph has a cycle through Switch.
	// One loop is reported per atom (the first found in deterministic
	// switch order).
	KindLoop Kind = iota
	// KindBlackhole: traffic for expected host Host is dropped at Switch
	// (no matching route, an empty port set, or an unwired egress port)
	// on some path from a traffic source.
	KindBlackhole
	// KindMisdeliver: traffic for expected host Host egresses a
	// host-facing port of Switch that is attached to a different host.
	KindMisdeliver
)

func (k Kind) String() string {
	switch k {
	case KindLoop:
		return "loop"
	case KindBlackhole:
		return "blackhole"
	case KindMisdeliver:
		return "misdeliver"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Violation is one invariant failure over a destination range.
// Lo and Hi are inclusive.
type Violation struct {
	Kind   Kind
	Switch uint32
	// Host is the expected destination whose delivery failed; zero for
	// loops, which are a property of the range itself.
	Host   dataplane.IP4
	Lo, Hi dataplane.IP4
}

func (x Violation) String() string {
	rng := fmt.Sprintf("[%s, %s]", x.Lo, x.Hi)
	if x.Lo == x.Hi {
		rng = x.Lo.String()
	}
	if x.Kind == KindLoop {
		return fmt.Sprintf("loop via switch %d for %s", x.Switch, rng)
	}
	return fmt.Sprintf("%s at switch %d for host %s (%s)", x.Kind, x.Switch, x.Host, rng)
}

// violKey identifies a violation within one atom; the range is the
// atom's own and is materialized only at report time.
type violKey struct {
	kind Kind
	sw   uint32
	host uint32
}

// Update summarizes the incremental work one mutation caused — the
// observable proof that rechecking is partial: Affected counts the atoms
// recheck actually visited.
type Update struct {
	// Affected is the number of atoms rechecked.
	Affected int
	// Split is the number of new atoms created by boundary splits (0..2).
	Split int
	// Raised and Resolved count violation transitions emitted.
	Raised, Resolved int
}

// Stats are cumulative verifier counters.
type Stats struct {
	Switches int
	Atoms    int
	// Routes counts live route entries across all switches.
	Routes int
	// Updates counts Install/Remove/ExpectHost mutations processed.
	Updates uint64
	// Splits counts atom splits; Rechecks counts per-atom invariant
	// recomputations.
	Splits, Rechecks uint64
	// Raised and Resolved count violation transitions.
	Raised, Resolved uint64
	// Outstanding counts currently-failing (atom, violation) pairs.
	Outstanding int
}

type routeKey struct {
	prefix uint32
	bits   int
}

// routeSlot is one installed route. Slots are tombstoned, never
// compacted: atom owner fields index into this slice, so indices must
// stay stable; freed slots are reused through the free list.
type routeSlot struct {
	key   routeKey
	ports []int
	live  bool
}

// portDest is what a switch port is wired to.
type portDest struct {
	isHost bool
	sw     int    // dense switch index, when !isHost
	hostIP uint32 // attached host address, when isHost
}

type swState struct {
	id     uint32
	routes []routeSlot
	free   []int32
	byKey  map[routeKey]int32
	ports  map[int]portDest
	// hasHost marks traffic sources: reachability is traced from every
	// switch with an attached host.
	hasHost bool
}

// lpm returns the live slot with the longest prefix containing addr, or
// -1. Used to re-elect an atom's owner after a removal; addr is the
// atom's lo, which is equivalent to testing the whole atom because every
// installed prefix aligns with atom boundaries.
func (s *swState) lpm(addr uint64) int32 {
	best, bestBits := int32(-1), -1
	for i := range s.routes {
		r := &s.routes[i]
		if !r.live || r.key.bits <= bestBits {
			continue
		}
		lo, hi := prefixRange(r.key)
		if lo <= addr && addr < hi {
			best, bestBits = int32(i), r.key.bits
		}
	}
	return best
}

// atom is one disjoint destination range [lo, hi) with uniform
// forwarding: owner[i] is switch i's LPM route slot for the whole range
// (-1: no route).
type atom struct {
	lo, hi uint64
	owner  []int32
	viols  map[violKey]struct{}
}

// Verifier is the incremental control-plane verifier. It is
// single-threaded, like the netsim event loop it watches.
type Verifier struct {
	sws  []*swState
	idx  map[uint32]int
	atos []*atom // sorted by lo, contiguous cover of [0, 2^32)

	// expect is the set of host addresses whose delivery invariants
	// (reachability from every source, no blackhole, no misdelivery) are
	// checked; see ExpectHost.
	expect map[uint32]struct{}

	// OnViolation and OnResolved observe per-atom violation transitions,
	// in deterministic order within one mutation. Either may be nil.
	OnViolation func(Violation)
	OnResolved  func(Violation)

	stats Stats

	// scratch for rechecks, reused across calls.
	color []uint8
}

// New returns an empty verifier: one atom covering the whole space, no
// switches, no expectations.
func New() *Verifier {
	return &Verifier{
		idx:    map[uint32]int{},
		atos:   []*atom{{lo: 0, hi: 1 << 32}},
		expect: map[uint32]struct{}{},
	}
}

func prefixRange(k routeKey) (lo, hi uint64) {
	lo = uint64(k.prefix)
	return lo, lo + 1<<(32-uint(k.bits))
}

func canon(prefix dataplane.IP4, bits int) routeKey {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("atoms: prefix length %d out of range", bits))
	}
	var mask uint32
	if bits > 0 {
		mask = ^uint32(0) << (32 - uint(bits))
	}
	return routeKey{prefix: uint32(prefix) & mask, bits: bits}
}

// AddSwitch registers a switch; idempotent. Switches may also be
// registered implicitly by Install/Connect/AttachHost.
func (v *Verifier) AddSwitch(id uint32) {
	v.ensure(id)
}

func (v *Verifier) ensure(id uint32) int {
	if i, ok := v.idx[id]; ok {
		return i
	}
	i := len(v.sws)
	v.idx[id] = i
	v.sws = append(v.sws, &swState{id: id, byKey: map[routeKey]int32{}, ports: map[int]portDest{}})
	for _, a := range v.atos {
		a.owner = append(a.owner, -1)
	}
	v.stats.Switches = len(v.sws)
	return i
}

// Connect wires a bidirectional switch-to-switch link into the
// verifier's topology model.
func (v *Verifier) Connect(aID uint32, aPort int, bID uint32, bPort int) {
	ai, bi := v.ensure(aID), v.ensure(bID)
	v.sws[ai].ports[aPort] = portDest{sw: bi}
	v.sws[bi].ports[bPort] = portDest{sw: ai}
}

// AttachHost wires a host with the given address to a switch port and
// marks the switch as a traffic source. Attachment alone enables the
// misdelivery check against this port; delivery to ip is only verified
// once ExpectHost(ip) is declared.
func (v *Verifier) AttachHost(swID uint32, port int, ip dataplane.IP4) {
	si := v.ensure(swID)
	v.sws[si].ports[port] = portDest{isHost: true, hostIP: uint32(ip)}
	v.sws[si].hasHost = true
}

// ExpectHost declares that traffic for ip must reach its attached host
// from every traffic source, and rechecks the atom containing ip. Call
// it after the intended routes are installed: expectations declared over
// a half-built table report the build transient as violations.
func (v *Verifier) ExpectHost(ip dataplane.IP4) Update {
	v.stats.Updates++
	var u Update
	if _, ok := v.expect[uint32(ip)]; ok {
		return u
	}
	v.expect[uint32(ip)] = struct{}{}
	a := v.atos[v.find(uint64(uint32(ip)))]
	v.recheck(a, &u)
	return u
}

// find returns the index of the atom containing addr.
func (v *Verifier) find(addr uint64) int {
	return sort.Search(len(v.atos), func(i int) bool { return v.atos[i].lo > addr }) - 1
}

// splitAt ensures an atom boundary exists at addr, splitting the
// containing atom if needed. The new right half inherits the left's
// owners and violations (both ranges had identical forwarding, so the
// checks' outcomes are identical by construction — no recheck needed).
func (v *Verifier) splitAt(addr uint64, u *Update) {
	if addr == 0 || addr >= 1<<32 {
		return
	}
	i := v.find(addr)
	a := v.atos[i]
	if a.lo == addr {
		return
	}
	b := &atom{lo: addr, hi: a.hi, owner: append([]int32(nil), a.owner...)}
	if len(a.viols) > 0 {
		b.viols = make(map[violKey]struct{}, len(a.viols))
		for k := range a.viols {
			b.viols[k] = struct{}{}
			v.stats.Outstanding++
		}
	}
	a.hi = addr
	v.atos = append(v.atos, nil)
	copy(v.atos[i+2:], v.atos[i+1:])
	v.atos[i+1] = b
	u.Split++
	v.stats.Splits++
	v.stats.Atoms = len(v.atos)
}

// Install installs or replaces route (prefix/bits -> ports) on a switch
// and rechecks the affected atoms. The switch is registered implicitly.
func (v *Verifier) Install(swID uint32, prefix dataplane.IP4, bits int, ports []int) Update {
	v.stats.Updates++
	var u Update
	si := v.ensure(swID)
	s := v.sws[si]
	key := canon(prefix, bits)
	lo, hi := prefixRange(key)

	if slot, ok := s.byKey[key]; ok {
		// Replacement: ownership (decided by prefix length) is unchanged;
		// only the out-edges of atoms this slot already owns move.
		s.routes[slot].ports = append([]int(nil), ports...)
		for i := v.find(lo); i < len(v.atos) && v.atos[i].lo < hi; i++ {
			if a := v.atos[i]; a.owner[si] == slot {
				v.recheck(a, &u)
			}
		}
		return u
	}

	v.splitAt(lo, &u)
	v.splitAt(hi, &u)

	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
		s.routes[slot] = routeSlot{key: key, ports: append([]int(nil), ports...), live: true}
	} else {
		slot = int32(len(s.routes))
		s.routes = append(s.routes, routeSlot{key: key, ports: append([]int(nil), ports...), live: true})
	}
	s.byKey[key] = slot
	v.stats.Routes++

	// Contest ownership of every atom the prefix covers. Longer prefixes
	// win; an equal-length incumbent is impossible (two distinct prefixes
	// of one length are disjoint, so both cannot cover this atom).
	for i := v.find(lo); i < len(v.atos) && v.atos[i].lo < hi; i++ {
		a := v.atos[i]
		if cur := a.owner[si]; cur >= 0 && s.routes[cur].key.bits > key.bits {
			continue
		}
		a.owner[si] = slot
		v.recheck(a, &u)
	}
	return u
}

// Remove deletes route (prefix/bits) from a switch, re-elects owners for
// the atoms it owned from the surviving table, and rechecks them.
// Removing an absent route is a no-op.
func (v *Verifier) Remove(swID uint32, prefix dataplane.IP4, bits int) Update {
	v.stats.Updates++
	var u Update
	si, ok := v.idx[swID]
	if !ok {
		return u
	}
	s := v.sws[si]
	key := canon(prefix, bits)
	slot, ok := s.byKey[key]
	if !ok {
		return u
	}
	delete(s.byKey, key)
	s.routes[slot].live = false
	v.stats.Routes--

	lo, hi := prefixRange(key)
	for i := v.find(lo); i < len(v.atos) && v.atos[i].lo < hi; i++ {
		a := v.atos[i]
		if a.owner[si] != slot {
			continue
		}
		a.owner[si] = s.lpm(a.lo)
		v.recheck(a, &u)
	}

	s.routes[slot].ports = nil
	s.free = append(s.free, slot)
	return u
}

// ---------------------------------------------------------------------------
// Invariant checks

// recheck recomputes one atom's violation set from scratch and emits the
// diff against the previous set through OnViolation/OnResolved.
func (v *Verifier) recheck(a *atom, u *Update) {
	u.Affected++
	v.stats.Rechecks++

	fresh := map[violKey]struct{}{}
	v.checkLoops(a, fresh)
	for ip := range v.expect {
		if addr := uint64(ip); a.lo <= addr && addr < a.hi {
			v.checkDelivery(a, ip, fresh)
		}
	}

	// Diff, in deterministic order.
	var raised, resolved []violKey
	for k := range fresh {
		if _, ok := a.viols[k]; !ok {
			raised = append(raised, k)
		}
	}
	for k := range a.viols {
		if _, ok := fresh[k]; !ok {
			resolved = append(resolved, k)
		}
	}
	if len(raised) == 0 && len(resolved) == 0 {
		return
	}
	sortKeys(raised)
	sortKeys(resolved)
	v.stats.Outstanding += len(raised) - len(resolved)
	u.Raised += len(raised)
	u.Resolved += len(resolved)
	v.stats.Raised += uint64(len(raised))
	v.stats.Resolved += uint64(len(resolved))
	if len(fresh) == 0 {
		fresh = nil
	}
	a.viols = fresh
	for _, k := range raised {
		if v.OnViolation != nil {
			v.OnViolation(v.materialize(a, k))
		}
	}
	for _, k := range resolved {
		if v.OnResolved != nil {
			v.OnResolved(v.materialize(a, k))
		}
	}
}

func (v *Verifier) materialize(a *atom, k violKey) Violation {
	return Violation{
		Kind: k.kind, Switch: k.sw, Host: dataplane.IP4(k.host),
		Lo: dataplane.IP4(a.lo), Hi: dataplane.IP4(a.hi - 1),
	}
}

func sortKeys(ks []violKey) {
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.sw != b.sw {
			return a.sw < b.sw
		}
		return a.host < b.host
	})
}

// checkLoops runs a 3-color DFS over the atom's switch graph (switch i's
// out-edges are the switch-bound ports of its owner route) and records
// the first cycle found, keyed by the switch the back edge re-enters.
// Iteration is by dense switch index and route port order, so the
// representative is deterministic.
func (v *Verifier) checkLoops(a *atom, out map[violKey]struct{}) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	if cap(v.color) < len(v.sws) {
		v.color = make([]uint8, len(v.sws))
	}
	color := v.color[:len(v.sws)]
	for i := range color {
		color[i] = white
	}
	var dfs func(si int) (loopAt int)
	dfs = func(si int) int {
		color[si] = gray
		if slot := a.owner[si]; slot >= 0 {
			for _, p := range v.sws[si].routes[slot].ports {
				d, ok := v.sws[si].ports[p]
				if !ok || d.isHost {
					continue
				}
				switch color[d.sw] {
				case gray:
					return d.sw
				case white:
					if at := dfs(d.sw); at >= 0 {
						return at
					}
				}
			}
		}
		color[si] = black
		return -1
	}
	for si := range v.sws {
		if color[si] != white {
			continue
		}
		if at := dfs(si); at >= 0 {
			out[violKey{kind: KindLoop, sw: v.sws[at].id}] = struct{}{}
			return
		}
	}
}

// deliveryQuery traces all forwarding paths for one expected host within
// one atom. Outcomes are per-switch and source-independent, so one memo
// serves every traffic source; only switches reachable from some source
// are ever visited, and each exactly once.
type deliveryQuery struct {
	v    *Verifier
	a    *atom
	host uint32
	// state: 0 unvisited, 1 on stack, 2 done.
	state []uint8
	out   map[violKey]struct{}
}

// trace walks from switch si. Every maximal path ends in exactly one of:
// delivery to the expected host (fine), delivery to another host
// (misdeliver), a dead end (blackhole), or a cycle — which is already
// reported by the loop check and deliberately not double-counted here.
func (q *deliveryQuery) trace(si int) {
	if q.state[si] != 0 {
		return
	}
	q.state[si] = 1
	s := q.v.sws[si]
	slot := q.a.owner[si]
	if slot < 0 || len(s.routes[slot].ports) == 0 {
		q.out[violKey{kind: KindBlackhole, sw: s.id, host: q.host}] = struct{}{}
		q.state[si] = 2
		return
	}
	for _, p := range s.routes[slot].ports {
		d, ok := s.ports[p]
		switch {
		case !ok:
			q.out[violKey{kind: KindBlackhole, sw: s.id, host: q.host}] = struct{}{}
		case d.isHost:
			if d.hostIP != q.host {
				q.out[violKey{kind: KindMisdeliver, sw: s.id, host: q.host}] = struct{}{}
			}
		default:
			q.trace(d.sw)
		}
	}
	q.state[si] = 2
}

func (v *Verifier) checkDelivery(a *atom, host uint32, out map[violKey]struct{}) {
	q := &deliveryQuery{v: v, a: a, host: host, state: make([]uint8, len(v.sws)), out: out}
	for si, s := range v.sws {
		if s.hasHost {
			q.trace(si)
		}
	}
}

// ---------------------------------------------------------------------------
// Reporting

// Outstanding snapshots the current violation set, merging contiguous
// atoms that fail identically, sorted by (kind, switch, host, lo).
func (v *Verifier) Outstanding() []Violation {
	type span struct{ lo, hi uint64 }
	spans := map[violKey][]span{}
	for _, a := range v.atos {
		for k := range a.viols {
			ss := spans[k]
			if n := len(ss); n > 0 && ss[n-1].hi == a.lo {
				ss[n-1].hi = a.hi
			} else {
				ss = append(ss, span{a.lo, a.hi})
			}
			spans[k] = ss
		}
	}
	var out []Violation
	for k, ss := range spans {
		for _, s := range ss {
			out = append(out, Violation{
				Kind: k.kind, Switch: k.sw, Host: dataplane.IP4(k.host),
				Lo: dataplane.IP4(s.lo), Hi: dataplane.IP4(s.hi - 1),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.Lo < b.Lo
	})
	return out
}

// Stats returns cumulative counters.
func (v *Verifier) Stats() Stats {
	st := v.stats
	st.Atoms = len(v.atos)
	st.Switches = len(v.sws)
	return st
}
