package atoms

import (
	"fmt"
	"sort"
	"strings"
)

// Audit is the control-variable half of static verification: it
// cross-checks the control plane's *declared* install intents against
// the installs a controlplane.Controller actually applied, flagging
// entries that were withheld or have not landed yet. Route-table
// invariants live in Verifier; Audit covers the checker control state
// (firewall allow-lists, VLAN membership, ...) that route atoms cannot
// see.
//
// It implements the controller's InstallObserver contract structurally
// (ControlInstalled / ControlDeleted), so wiring is one assignment:
//
//	audit := atoms.NewAudit()
//	ctl.Observer = audit
//
// Deliberately NOT observed: switch wipes (Controller.WipeSwitch) and
// direct table mutations that bypass the controller. A crash that loses
// installed state is a runtime fault — the two-layer chaos oracle wants
// it caught by the runtime checkers, not statically — so an install
// stays "applied" once observed.
type Audit struct {
	// expected[k] is the set of switches intent k must land on;
	// installed[k] the set it has landed on.
	expected  map[intentKey]map[uint32]struct{}
	installed map[intentKey]map[uint32]struct{}
}

type intentKey struct {
	checker string
	varName string
	key     string // "/"-joined key words; "" for scalars
}

func encodeKey(key []uint64) string {
	if len(key) == 0 {
		return ""
	}
	parts := make([]string, len(key))
	for i, k := range key {
		parts[i] = fmt.Sprintf("%d", k)
	}
	return strings.Join(parts, "/")
}

// MissingInstall is one declared intent a switch has not applied.
type MissingInstall struct {
	Checker string
	Var     string
	Key     string
	Switch  uint32
}

func (m MissingInstall) String() string {
	if m.Key == "" {
		return fmt.Sprintf("%s/%s not installed on switch %d", m.Checker, m.Var, m.Switch)
	}
	return fmt.Sprintf("%s/%s[%s] not installed on switch %d", m.Checker, m.Var, m.Key, m.Switch)
}

// NewAudit returns an empty audit.
func NewAudit() *Audit {
	return &Audit{
		expected:  map[intentKey]map[uint32]struct{}{},
		installed: map[intentKey]map[uint32]struct{}{},
	}
}

// Expect declares that (checker, varName, key) must be installed on
// each of the given switches.
func (a *Audit) Expect(checker, varName string, key []uint64, switches ...uint32) {
	k := intentKey{checker, varName, encodeKey(key)}
	set := a.expected[k]
	if set == nil {
		set = map[uint32]struct{}{}
		a.expected[k] = set
	}
	for _, id := range switches {
		set[id] = struct{}{}
	}
}

// ControlInstalled records an applied install (the controller's
// InstallObserver hook). Installs with no declared intent are recorded
// too, so a later Expect is immediately satisfied.
func (a *Audit) ControlInstalled(checker string, switchID uint32, varName string, key []uint64, value uint64) {
	k := intentKey{checker, varName, encodeKey(key)}
	set := a.installed[k]
	if set == nil {
		set = map[uint32]struct{}{}
		a.installed[k] = set
	}
	set[switchID] = struct{}{}
}

// ControlDeleted records an applied delete: the entry is no longer
// installed on that switch, and any declared intent for it goes back to
// missing.
func (a *Audit) ControlDeleted(checker string, switchID uint32, varName string, key []uint64) {
	k := intentKey{checker, varName, encodeKey(key)}
	if set := a.installed[k]; set != nil {
		delete(set, switchID)
	}
}

// Missing snapshots every declared intent not currently applied, sorted
// by (checker, var, key, switch) — the static verdict on withheld and
// not-yet-delivered installs.
func (a *Audit) Missing() []MissingInstall {
	var out []MissingInstall
	for k, sws := range a.expected {
		inst := a.installed[k]
		for id := range sws {
			if _, ok := inst[id]; !ok {
				out = append(out, MissingInstall{Checker: k.checker, Var: k.varName, Key: k.key, Switch: id})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		x, y := out[i], out[j]
		if x.Checker != y.Checker {
			return x.Checker < y.Checker
		}
		if x.Var != y.Var {
			return x.Var < y.Var
		}
		if x.Key != y.Key {
			return x.Key < y.Key
		}
		return x.Switch < y.Switch
	})
	return out
}
