package ltlf

import (
	"fmt"
	"strconv"
	"strings"
)

// Translator turns an LTLf formula into an Indus program (Theorem 3.1).
//
// Layout of the generated program, following §3.3:
//
//   - tele bit<8>[N] trace_idx — the increasing index sequence T;
//   - tele bool[N] atom_<a> — one array per atomic predicate, populated
//     each hop from a header variable of the same name;
//   - the checker evaluates the Figure 5 first-order encoding, with the
//     until operator realized as a single ordered scan (the ∀-prefix is
//     maintained incrementally, which is equivalent over the ordered
//     index array and avoids a quadratic unrolling);
//   - the packet is rejected iff the formula does not hold at index 0.
type Translator struct {
	// MaxTrace bounds the trace length (the static array capacity N).
	MaxTrace int

	b       strings.Builder
	tmp     int
	loopVar int
	decls   []string
}

// ToIndus translates the formula. Atom names become header bool
// variables the substrate must bind at each hop.
func ToIndus(f Formula, maxTrace int) string {
	t := &Translator{MaxTrace: maxTrace}
	return t.translate(f)
}

func (t *Translator) newTemp() string {
	t.tmp++
	name := fmt.Sprintf("r%d", t.tmp)
	t.decls = append(t.decls, "tele bool "+name+" = false;")
	return name
}

func (t *Translator) newLoopVar() string {
	t.loopVar++
	return fmt.Sprintf("y%d", t.loopVar)
}

func (t *Translator) pf(indent int, format string, args ...any) {
	t.b.WriteString(strings.Repeat("  ", indent))
	fmt.Fprintf(&t.b, format, args...)
	t.b.WriteByte('\n')
}

func (t *Translator) translate(f Formula) string {
	atoms := Atoms(f)

	var src strings.Builder
	fmt.Fprintf(&src, "// LTLf formula: %s\n", f)
	fmt.Fprintf(&src, "tele bit<8>[%d] trace_idx;\n", t.MaxTrace)
	for _, a := range atoms {
		fmt.Fprintf(&src, "tele bool[%d] atom_%s;\n", t.MaxTrace, a)
		fmt.Fprintf(&src, "header bool %s;\n", a)
	}

	// Emit the checker body first so the temp declarations are known.
	result := t.emit(f, "0", 1)
	body := t.b.String()

	for _, d := range t.decls {
		src.WriteString(d)
		src.WriteByte('\n')
	}

	// init block: nothing to do.
	src.WriteString("{ }\n")
	// telemetry block: record the index and the atom valuations.
	src.WriteString("{\n")
	src.WriteString("  trace_idx.push(hop_count - 1);\n")
	for _, a := range atoms {
		fmt.Fprintf(&src, "  atom_%s.push(%s);\n", a, a)
	}
	src.WriteString("}\n")
	// checker block: evaluate at index 0, reject on violation.
	src.WriteString("{\n")
	src.WriteString(body)
	fmt.Fprintf(&src, "  if (!%s) { reject; report; }\n", result)
	src.WriteString("}\n")
	return src.String()
}

// emit generates statements computing the truth of f at index expression
// idx into a fresh temp, returning the temp's name. Statements are
// emitted at the given indent level.
func (t *Translator) emit(f Formula, idx string, ind int) string {
	switch f := f.(type) {
	case Atom:
		r := t.newTemp()
		t.pf(ind, "%s = atom_%s[%s];", r, f.Name, idx)
		return r

	case Not:
		x := t.emit(f.F, idx, ind)
		r := t.newTemp()
		t.pf(ind, "%s = !%s;", r, x)
		return r

	case And:
		l := t.emit(f.L, idx, ind)
		rr := t.emit(f.R, idx, ind)
		r := t.newTemp()
		t.pf(ind, "%s = %s && %s;", r, l, rr)
		return r

	case Or:
		l := t.emit(f.L, idx, ind)
		rr := t.emit(f.R, idx, ind)
		r := t.newTemp()
		t.pf(ind, "%s = %s || %s;", r, l, rr)
		return r

	case Next:
		// ∃y. succ(idx, y) ∧ [φ]y — scan for the successor index.
		r := t.newTemp()
		y := t.newLoopVar()
		t.pf(ind, "%s = false;", r)
		t.pf(ind, "for (%s in trace_idx) {", y)
		t.pf(ind+1, "if (%s == %s) {", y, t.plusOne(idx))
		sub := t.emit(f.F, y, ind+2)
		t.pf(ind+2, "%s = %s;", r, sub)
		t.pf(ind+1, "}")
		t.pf(ind, "}")
		return r

	case Until:
		// Ordered scan: prefix tracks ∀z ∈ [idx, y). [φ]z.
		r := t.newTemp()
		prefix := t.newTemp()
		y := t.newLoopVar()
		t.pf(ind, "%s = false;", r)
		t.pf(ind, "%s = true;", prefix)
		t.pf(ind, "for (%s in trace_idx) {", y)
		t.pf(ind+1, "if (%s >= %s) {", y, idx)
		psi := t.emit(f.R, y, ind+2)
		t.pf(ind+2, "if (%s && %s) { %s = true; }", prefix, psi, r)
		phi := t.emit(f.L, y, ind+2)
		t.pf(ind+2, "if (!%s) { %s = false; }", phi, prefix)
		t.pf(ind+1, "}")
		t.pf(ind, "}")
		return r

	case Eventually:
		r := t.newTemp()
		y := t.newLoopVar()
		t.pf(ind, "%s = false;", r)
		t.pf(ind, "for (%s in trace_idx) {", y)
		t.pf(ind+1, "if (%s >= %s) {", y, idx)
		sub := t.emit(f.F, y, ind+2)
		t.pf(ind+2, "if (%s) { %s = true; }", sub, r)
		t.pf(ind+1, "}")
		t.pf(ind, "}")
		return r

	case Globally:
		r := t.newTemp()
		y := t.newLoopVar()
		t.pf(ind, "%s = true;", r)
		t.pf(ind, "for (%s in trace_idx) {", y)
		t.pf(ind+1, "if (%s >= %s) {", y, idx)
		sub := t.emit(f.F, y, ind+2)
		t.pf(ind+2, "if (!%s) { %s = false; }", sub, r)
		t.pf(ind+1, "}")
		t.pf(ind, "}")
		return r
	}
	panic(fmt.Sprintf("ltlf: unknown formula %T", f))
}

// plusOne renders idx+1, folding when idx is a literal so the generated
// comparison keeps consistent operand widths.
func (t *Translator) plusOne(idx string) string {
	if n, err := strconv.Atoi(idx); err == nil {
		return strconv.Itoa(n + 1)
	}
	return idx + " + 1"
}
