package ltlf

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseFormula parses LTLf surface syntax:
//
//	atoms:      lowercase identifiers (p, at_spine)
//	unary:      ! φ, X φ (next), F φ (eventually), G φ (globally)
//	binary:     φ & ψ, φ | ψ, φ U ψ   (precedence: ! X F G > & > | > U)
//	grouping:   ( φ )
//
// e.g. the §3.1 no-revisit property: "G !(a & X F a)".
func ParseFormula(src string) (Formula, error) {
	p := &formulaParser{toks: lexFormula(src)}
	f, err := p.parseUntil()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.toks) {
		return nil, fmt.Errorf("ltlf: unexpected %q after formula", p.toks[p.pos])
	}
	return f, nil
}

// MustParseFormula parses or panics, for fixtures.
func MustParseFormula(src string) Formula {
	f, err := ParseFormula(src)
	if err != nil {
		panic(err)
	}
	return f
}

func lexFormula(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case strings.ContainsRune("!&|()XFGU", c):
			toks = append(toks, string(c))
			i++
		case unicode.IsLower(c) || c == '_':
			j := i
			for j < len(src) && (isWordByte(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			toks = append(toks, "\x00"+string(c)) // marked illegal
			i++
		}
	}
	return toks
}

// isWordByte accepts atom-name bytes; uppercase letters are excluded
// because X/F/G/U are operators.
func isWordByte(b byte) bool {
	return b == '_' || b >= 'a' && b <= 'z' || b >= '0' && b <= '9'
}

type formulaParser struct {
	toks []string
	pos  int
}

func (p *formulaParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *formulaParser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

// parseUntil handles the lowest-precedence, right-associative U.
func (p *formulaParser) parseUntil() (Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek() == "U" {
		p.next()
		r, err := p.parseUntil()
		if err != nil {
			return nil, err
		}
		return Until{L: l, R: r}, nil
	}
	return l, nil
}

func (p *formulaParser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "|" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *formulaParser) parseAnd() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == "&" {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *formulaParser) parseUnary() (Formula, error) {
	switch t := p.peek(); t {
	case "!":
		p.next()
		f, err := p.parseUnary()
		return Not{F: f}, err
	case "X":
		p.next()
		f, err := p.parseUnary()
		return Next{F: f}, err
	case "F":
		p.next()
		f, err := p.parseUnary()
		return Eventually{F: f}, err
	case "G":
		p.next()
		f, err := p.parseUnary()
		return Globally{F: f}, err
	case "(":
		p.next()
		f, err := p.parseUntil()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("ltlf: missing closing parenthesis")
		}
		return f, nil
	case "":
		return nil, fmt.Errorf("ltlf: unexpected end of formula")
	default:
		if strings.HasPrefix(t, "\x00") {
			return nil, fmt.Errorf("ltlf: illegal character %q", t[1:])
		}
		if t == ")" || t == "&" || t == "|" || t == "U" {
			return nil, fmt.Errorf("ltlf: unexpected %q", t)
		}
		p.next()
		return Atom{Name: t}, nil
	}
}
