// Package ltlf implements Linear Temporal Logic over finite traces
// (LTLf) and its translation into Indus, the expressiveness result of
// §3.3 (Theorem 3.1): every LTLf property is expressible as an Indus
// checker. The translation follows the paper's recipe — the telemetry
// block populates an index array T and one boolean array per atomic
// predicate, and the checker block evaluates the first-order encoding of
// the formula (Figure 5) with for loops over T.
package ltlf

import (
	"fmt"
	"math/rand"
)

// Formula is an LTLf formula over named atomic predicates.
type Formula interface {
	fmt.Stringer
	holds(tr Trace, i int) bool
}

// Atom is an atomic predicate: true at an event iff the event carries it.
type Atom struct{ Name string }

// Not is logical negation.
type Not struct{ F Formula }

// And is conjunction.
type And struct{ L, R Formula }

// Or is disjunction.
type Or struct{ L, R Formula }

// Next (O φ) holds at i iff i+1 exists and φ holds there (the strong
// next of LTLf).
type Next struct{ F Formula }

// Until (φ U ψ) holds at i iff ψ holds at some j ≥ i within the trace
// and φ holds at every k with i ≤ k < j.
type Until struct{ L, R Formula }

// Eventually (◇ φ) is true U φ.
type Eventually struct{ F Formula }

// Globally (□ φ) is ¬◇¬φ.
type Globally struct{ F Formula }

func (a Atom) String() string       { return a.Name }
func (n Not) String() string        { return "!" + n.F.String() }
func (x And) String() string        { return "(" + x.L.String() + " & " + x.R.String() + ")" }
func (x Or) String() string         { return "(" + x.L.String() + " | " + x.R.String() + ")" }
func (n Next) String() string       { return "X(" + n.F.String() + ")" }
func (u Until) String() string      { return "(" + u.L.String() + " U " + u.R.String() + ")" }
func (e Eventually) String() string { return "F(" + e.F.String() + ")" }
func (g Globally) String() string   { return "G(" + g.F.String() + ")" }

// Event is one trace element: the set of atoms that hold.
type Event map[string]bool

// Trace is a finite, non-empty sequence of events.
type Trace []Event

// Holds evaluates the formula at position i of the trace under the
// standard LTLf semantics.
func Holds(f Formula, tr Trace, i int) bool { return f.holds(tr, i) }

func (a Atom) holds(tr Trace, i int) bool {
	if i < 0 || i >= len(tr) {
		return false
	}
	return tr[i][a.Name]
}

func (n Not) holds(tr Trace, i int) bool { return !n.F.holds(tr, i) }
func (x And) holds(tr Trace, i int) bool { return x.L.holds(tr, i) && x.R.holds(tr, i) }
func (x Or) holds(tr Trace, i int) bool  { return x.L.holds(tr, i) || x.R.holds(tr, i) }

func (n Next) holds(tr Trace, i int) bool {
	return i+1 < len(tr) && n.F.holds(tr, i+1)
}

func (u Until) holds(tr Trace, i int) bool {
	for j := i; j < len(tr); j++ {
		if u.R.holds(tr, j) {
			return true
		}
		if !u.L.holds(tr, j) {
			return false
		}
	}
	return false
}

func (e Eventually) holds(tr Trace, i int) bool {
	for j := i; j < len(tr); j++ {
		if e.F.holds(tr, j) {
			return true
		}
	}
	return false
}

func (g Globally) holds(tr Trace, i int) bool {
	for j := i; j < len(tr); j++ {
		if !g.F.holds(tr, j) {
			return false
		}
	}
	return true
}

// Atoms returns the distinct atom names appearing in the formula, in
// first-occurrence order.
func Atoms(f Formula) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Formula)
	walk = func(f Formula) {
		switch f := f.(type) {
		case Atom:
			if !seen[f.Name] {
				seen[f.Name] = true
				out = append(out, f.Name)
			}
		case Not:
			walk(f.F)
		case And:
			walk(f.L)
			walk(f.R)
		case Or:
			walk(f.L)
			walk(f.R)
		case Next:
			walk(f.F)
		case Until:
			walk(f.L)
			walk(f.R)
		case Eventually:
			walk(f.F)
		case Globally:
			walk(f.F)
		}
	}
	walk(f)
	return out
}

// Random generates a random formula of at most the given depth over the
// atom names, for property-based testing.
func Random(rng *rand.Rand, atoms []string, depth int) Formula {
	if depth <= 0 || rng.Intn(4) == 0 {
		return Atom{Name: atoms[rng.Intn(len(atoms))]}
	}
	switch rng.Intn(7) {
	case 0:
		return Not{F: Random(rng, atoms, depth-1)}
	case 1:
		return And{L: Random(rng, atoms, depth-1), R: Random(rng, atoms, depth-1)}
	case 2:
		return Or{L: Random(rng, atoms, depth-1), R: Random(rng, atoms, depth-1)}
	case 3:
		return Next{F: Random(rng, atoms, depth-1)}
	case 4:
		return Until{L: Random(rng, atoms, depth-1), R: Random(rng, atoms, depth-1)}
	case 5:
		return Eventually{F: Random(rng, atoms, depth-1)}
	default:
		return Globally{F: Random(rng, atoms, depth-1)}
	}
}

// RandomTrace generates a random trace of the given length.
func RandomTrace(rng *rand.Rand, atoms []string, n int) Trace {
	tr := make(Trace, n)
	for i := range tr {
		ev := Event{}
		for _, a := range atoms {
			ev[a] = rng.Intn(2) == 1
		}
		tr[i] = ev
	}
	return tr
}
