package ltlf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compiler"
	"repro/internal/indus/eval"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
	"repro/internal/pipeline"
)

func a(name string) Formula { return Atom{Name: name} }

func TestSemanticsBasics(t *testing.T) {
	tr := Trace{
		{"p": true, "q": false},
		{"p": true, "q": false},
		{"p": false, "q": true},
	}
	cases := []struct {
		f    Formula
		at   int
		want bool
	}{
		{a("p"), 0, true},
		{a("q"), 0, false},
		{Not{a("q")}, 0, true},
		{And{a("p"), a("q")}, 0, false},
		{Or{a("p"), a("q")}, 0, true},
		{Next{a("p")}, 0, true},
		{Next{a("q")}, 1, true},
		{Next{a("p")}, 2, false}, // strong next: no successor
		{Until{a("p"), a("q")}, 0, true},
		{Until{a("q"), a("p")}, 0, true}, // ψ holds immediately
		{Until{a("p"), Atom{"r"}}, 0, false},
		{Eventually{a("q")}, 0, true},
		{Eventually{a("q")}, 2, true},
		{Globally{a("p")}, 0, false},
		{Globally{a("p")}, 3, true}, // vacuous beyond the trace
		{Globally{Or{a("p"), a("q")}}, 0, true},
	}
	for _, c := range cases {
		if got := Holds(c.f, tr, c.at); got != c.want {
			t.Errorf("%s at %d = %v, want %v", c.f, c.at, got, c.want)
		}
	}
}

// TestNoLoopFormula encodes the paper's §3.1 example — □¬(A ∧ O◇A), "the
// packet must not visit switch A twice" — and checks it against traces.
func TestNoLoopFormula(t *testing.T) {
	noRevisit := Globally{Not{And{a("A"), Next{Eventually{a("A")}}}}}
	visit := func(flags ...bool) Trace {
		tr := make(Trace, len(flags))
		for i, f := range flags {
			tr[i] = Event{"A": f}
		}
		return tr
	}
	if !Holds(noRevisit, visit(true, false, false), 0) {
		t.Error("single visit must satisfy")
	}
	if !Holds(noRevisit, visit(false, false), 0) {
		t.Error("no visit must satisfy")
	}
	if Holds(noRevisit, visit(true, false, true), 0) {
		t.Error("revisit must violate")
	}
}

func TestAtoms(t *testing.T) {
	f := And{Until{a("p"), a("q")}, Next{a("p")}}
	got := Atoms(f)
	if len(got) != 2 || got[0] != "p" || got[1] != "q" {
		t.Fatalf("Atoms = %v", got)
	}
}

// translateAndRun evaluates the translated Indus program over the trace
// on both the interpreter and the compiled pipeline, returning the two
// verdicts (true = formula holds, i.e. the packet is forwarded).
func translateAndRun(t *testing.T, f Formula, tr Trace) (bool, bool) {
	t.Helper()
	src := ToIndus(f, 8)
	prog, err := parser.Parse("ltlf.indus", src)
	if err != nil {
		t.Fatalf("generated program does not parse: %v\n%s", err, src)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("generated program does not type-check: %v\n%s", err, src)
	}

	// Interpreter run.
	m := eval.New(info)
	hops := make([]eval.Hop, len(tr))
	for i, ev := range tr {
		headers := map[string]eval.Value{}
		for _, atom := range Atoms(f) {
			headers[atom] = eval.Bool(ev[atom])
		}
		hops[i] = eval.Hop{Switch: eval.NewSwitchState(uint32(i + 1)), Headers: headers, PacketLen: 100}
	}
	out, err := m.RunTrace(hops)
	if err != nil {
		t.Fatalf("interpreter: %v\n%s", err, src)
	}

	// Compiled pipeline run.
	compiled, err := compiler.Compile(info, compiler.Options{Name: "ltlf"})
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	rt := &compiler.Runtime{Prog: compiled}
	st := compiled.NewState()
	envs := make([]compiler.HopEnv, len(tr))
	for i, ev := range tr {
		headers := map[string]pipeline.Value{}
		for _, atom := range Atoms(f) {
			headers["hdr."+atom] = pipeline.BoolV(ev[atom])
		}
		envs[i] = compiler.HopEnv{State: st, SwitchID: uint32(i + 1), Headers: headers, PacketLen: 100}
	}
	res, err := rt.RunTrace(envs)
	if err != nil {
		t.Fatalf("pipeline: %v\n%s", err, src)
	}
	return out.Verdict == eval.VerdictForward, !res.Reject
}

// TestTheorem31 is the expressiveness theorem as an executable property:
// for random LTLf formulas and random traces, the translated Indus
// checker forwards the packet iff the formula holds — on both the
// reference interpreter and the compiled pipeline.
func TestTheorem31(t *testing.T) {
	atoms := []string{"p", "q", "s"}
	run := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := Random(rng, atoms, 3)
		tr := RandomTrace(rng, atoms, 1+rng.Intn(6))
		want := Holds(f, tr, 0)
		gotInterp, gotPipe := translateAndRun(t, f, tr)
		if gotInterp != want || gotPipe != want {
			t.Logf("formula %s over %d-event trace: ltlf=%v interp=%v pipeline=%v",
				f, len(tr), want, gotInterp, gotPipe)
			return false
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem31Exhaustive checks every formula of a curated set against
// every boolean trace of length up to 4 over one atom.
func TestTheorem31Exhaustive(t *testing.T) {
	formulas := []Formula{
		a("p"),
		Not{a("p")},
		Next{a("p")},
		Next{Next{a("p")}},
		Eventually{a("p")},
		Globally{a("p")},
		Until{a("p"), Not{a("p")}},
		Globally{Not{And{a("p"), Next{Eventually{a("p")}}}}}, // no-revisit
	}
	for _, f := range formulas {
		for n := 1; n <= 4; n++ {
			for bits := 0; bits < 1<<n; bits++ {
				tr := make(Trace, n)
				for i := 0; i < n; i++ {
					tr[i] = Event{"p": bits>>i&1 == 1}
				}
				want := Holds(f, tr, 0)
				gotInterp, gotPipe := translateAndRun(t, f, tr)
				if gotInterp != want || gotPipe != want {
					t.Fatalf("%s over %v: ltlf=%v interp=%v pipe=%v", f, tr, want, gotInterp, gotPipe)
				}
			}
		}
	}
}

func TestGeneratedProgramShape(t *testing.T) {
	src := ToIndus(Until{a("p"), a("q")}, 8)
	prog, err := parser.Parse("gen.indus", src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	if _, err := types.Check(prog); err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	if len(prog.Telemetry.Stmts) != 3 { // trace_idx push + two atom pushes
		t.Fatalf("telemetry stmts = %d\n%s", len(prog.Telemetry.Stmts), src)
	}
}

func TestParseFormula(t *testing.T) {
	cases := []struct{ src, want string }{
		{"p", "p"},
		{"!p", "!p"},
		{"p & q", "(p & q)"},
		{"p | q & s", "(p | (q & s))"},
		{"p U q", "(p U q)"},
		{"p U q U s", "(p U (q U s))"}, // right associative
		{"X p", "X(p)"},
		{"F p & q", "(F(p) & q)"}, // unary binds tighter
		{"G !(a & X F a)", "G(!(a & X(F(a))))"},
		{"(p | q) U s", "((p | q) U s)"},
	}
	for _, c := range cases {
		f, err := ParseFormula(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got := f.String(); got != c.want {
			t.Errorf("%q parsed as %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseFormulaErrors(t *testing.T) {
	for _, src := range []string{"", "p &", "(p", "p)", "& p", "p q", "p # q", "U p"} {
		if _, err := ParseFormula(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

// TestParsePrintRoundTrip: printing a random formula and re-parsing it
// yields the same structure (String() emits parseable syntax).
func TestParsePrintRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		f := Random(rng, []string{"p", "q", "s"}, 4)
		got, err := ParseFormula(f.String())
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if got.String() != f.String() {
			t.Fatalf("round trip: %s != %s", got, f)
		}
	}
}

func TestParsedFormulaCompilesEndToEnd(t *testing.T) {
	// The §3.1 property, parsed from text, translated, compiled, and
	// evaluated over a revisiting trace.
	f := MustParseFormula("G !(a & X F a)")
	tr := Trace{{"a": true}, {"a": false}, {"a": true}}
	if Holds(f, tr, 0) {
		t.Fatal("revisit should violate")
	}
	gotInterp, gotPipe := translateAndRun(t, f, tr)
	if gotInterp || gotPipe {
		t.Fatal("translated checker must reject the revisiting packet")
	}
}
