// Package resources models the two Tofino resources Table 1 of the Hydra
// paper reports for each checker: pipeline stages and Packet Header
// Vector (PHV) bits.
//
// PHV model: Tofino-1 exposes 224 PHV containers (64×8-bit, 96×16-bit,
// 64×32-bit — 4096 bits). Fields occupy whole containers; 1-bit flags
// pack eight to an 8-bit container within their group (header vs
// metadata). Metadata that must cross from ingress to egress is bridged,
// which the model charges as a 2× factor on metadata containers. The
// baseline (the Aether fabric-upf profile) is taken from the paper:
// 44.53 % of PHV and 12 stages.
//
// Stage model: within each compiled block, an op must be placed in a
// stage strictly after every op that produces a value it consumes
// (match/action dependencies); the block's stage need is the longest
// such chain. Because Hydra checking code is independent of forwarding
// (§6.2: "each of the checkers can be executed in parallel alongside the
// base program"), a checker occupies max(baseline, chain) stages when
// linked, not baseline + chain.
package resources

import (
	"repro/internal/pipeline"
)

// Tofino-1 PHV geometry.
const (
	PHVTotalBits = 4096
	// BridgeFactor charges ingress→egress bridged metadata twice.
	BridgeFactor = 2
)

// Baseline resource usage of the forwarding program the checkers link
// with (Table 1's first row).
const (
	BaselineStages = 12
	BaselinePHVPct = 44.53
)

// Report is the resource estimate for one compiled checker.
type Report struct {
	Name string

	// Raw field bits before container allocation.
	HeaderFieldBits int
	MetaFieldBits   int

	// Bits of whole PHV containers after allocation (metadata already
	// multiplied by BridgeFactor).
	HeaderContainerBits int
	MetaContainerBits   int

	// AddedPHVBits is the checker's total PHV cost.
	AddedPHVBits int
	// PHVPct is baseline + added, as Table 1 reports it.
	PHVPct float64

	// ChainInit/ChainTelemetry/ChainChecker are the longest dependency
	// chains of each block; StandaloneStages is their maximum.
	ChainInit      int
	ChainTelemetry int
	ChainChecker   int
	// StandaloneStages is the stage need of the checker alone.
	StandaloneStages int
	// MergedStages is the stage count after linking with the baseline.
	MergedStages int

	// Tables and Registers counted, for the resource narrative.
	Tables    int
	Registers int
}

// Analyze estimates the resource usage of a compiled checker.
func Analyze(prog *pipeline.Program) Report {
	r := Report{Name: prog.Name, Tables: len(prog.Tables), Registers: len(prog.Registers)}

	// ---- PHV: header group (the generated telemetry header).
	var headerWidths []int
	headerWidths = append(headerWidths, 16, 8) // hydra_eth_type, hop_count
	for _, f := range prog.Tele {
		if f.IsArray {
			headerWidths = append(headerWidths, 8) // valid count
			for i := 0; i < f.Cap; i++ {
				headerWidths = append(headerWidths, f.Width)
			}
			continue
		}
		headerWidths = append(headerWidths, f.Width)
	}

	// ---- PHV: metadata group (reject/last/first flags, switch id,
	// control-table outputs and hit flags, compiler temporaries).
	metaWidths := []int{1, 1, 1, 32} // reject0, last_hop, first_hop, switch_id
	for _, t := range prog.Tables {
		metaWidths = append(metaWidths, t.OutputWidths...)
		metaWidths = append(metaWidths, 1) // hit flag
	}
	metaWidths = append(metaWidths, tempWidths(prog)...)

	r.HeaderFieldBits = sum(headerWidths)
	r.MetaFieldBits = sum(metaWidths)
	r.HeaderContainerBits = AllocateContainers(headerWidths)
	r.MetaContainerBits = AllocateContainers(metaWidths) * BridgeFactor
	r.AddedPHVBits = r.HeaderContainerBits + r.MetaContainerBits
	r.PHVPct = BaselinePHVPct + float64(r.AddedPHVBits)/PHVTotalBits*100

	// ---- Stages.
	r.ChainInit = ChainLength(prog.Init)
	r.ChainTelemetry = ChainLength(prog.Telemetry)
	r.ChainChecker = ChainLength(prog.Checker)
	r.StandaloneStages = max3(r.ChainInit, r.ChainTelemetry, r.ChainChecker)
	r.MergedStages = r.StandaloneStages
	if BaselineStages > r.MergedStages {
		r.MergedStages = BaselineStages
	}
	return r
}

func sum(ws []int) int {
	n := 0
	for _, w := range ws {
		n += w
	}
	return n
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// AllocateContainers returns the PHV bits consumed by fields of the
// given widths under container-granular allocation: 1-bit flags pack
// eight per 8-bit container; other fields use the smallest container
// (8/16/32) that holds them, spilling to multiple 32-bit containers
// above 32 bits.
func AllocateContainers(widths []int) int {
	bits := 0
	flags := 0
	for _, w := range widths {
		switch {
		case w <= 0:
		case w == 1:
			flags++
		case w <= 8:
			bits += 8
		case w <= 16:
			bits += 16
		case w <= 32:
			bits += 32
		default:
			full := w / 32
			bits += full * 32
			if rem := w - full*32; rem > 0 {
				bits += AllocateContainers([]int{rem})
			}
		}
	}
	bits += (flags + 7) / 8 * 8
	return bits
}

// tempWidths collects the widths of compiler temporaries (local.* and
// register-read destinations) appearing in the program.
func tempWidths(prog *pipeline.Program) []int {
	seen := map[pipeline.FieldRef]int{}
	record := func(ref pipeline.FieldRef, w int) {
		if len(ref) > 6 && ref[:6] == "local." {
			if w > seen[ref] {
				seen[ref] = w
			}
		}
	}
	walk := func(ops []pipeline.Op) {
		pipeline.WalkOps(ops, func(op pipeline.Op) {
			switch op := op.(type) {
			case pipeline.AssignOp:
				record(op.Dst, op.DstWidth)
			case pipeline.RegReadOp:
				record(op.Dst, op.Width)
			}
		})
	}
	walk(prog.Init)
	walk(prog.Telemetry)
	walk(prog.Checker)
	var ws []int
	for _, w := range seen {
		ws = append(ws, w)
	}
	return ws
}

// ---------------------------------------------------------------------------
// Stage chains

// ChainLength computes the longest match/action dependency chain of a
// block: each op lands in the earliest stage after all producers of the
// fields it reads, and the block needs as many stages as its deepest op.
func ChainLength(ops []pipeline.Op) int {
	writeStage := map[pipeline.FieldRef]int{}
	return placeOps(ops, 0, writeStage)
}

// placeOps returns the deepest stage used; condStage is the stage at
// which the dominating branch condition became available.
func placeOps(ops []pipeline.Op, condStage int, writeStage map[pipeline.FieldRef]int) int {
	deepest := 0
	for _, op := range ops {
		switch op := op.(type) {
		case pipeline.IfOp:
			s := depOf(readsOfExpr(op.Cond), condStage, writeStage)
			// Ops inside the branch can share the stage where the
			// condition is evaluated only if they have no further deps;
			// model them as gated at the condition's stage.
			d := placeOps(op.Then, s, writeStage)
			if d2 := placeOps(op.Else, s, writeStage); d2 > d {
				d = d2
			}
			if s > d {
				d = s
			}
			if d > deepest {
				deepest = d
			}
		default:
			reads, writes := opDeps(op)
			s := depOf(reads, condStage, writeStage) + 1
			for _, w := range writes {
				if s > writeStage[w] {
					writeStage[w] = s
				}
			}
			if s > deepest {
				deepest = s
			}
		}
	}
	return deepest
}

// depOf returns the latest stage among the producers of the read fields
// and the gating condition.
func depOf(reads []pipeline.FieldRef, condStage int, writeStage map[pipeline.FieldRef]int) int {
	s := condStage
	for _, f := range reads {
		if writeStage[f] > s {
			s = writeStage[f]
		}
	}
	return s
}

// opDeps returns the fields an op reads and writes, with registers
// serialized through a pseudo-field so read-after-write chains count.
func opDeps(op pipeline.Op) (reads, writes []pipeline.FieldRef) {
	switch op := op.(type) {
	case pipeline.AssignOp:
		return readsOfExpr(op.Src), []pipeline.FieldRef{op.Dst}
	case pipeline.ApplyOp:
		for _, k := range op.Keys {
			reads = append(reads, readsOfExpr(k)...)
		}
		// Outputs are unknown here (they live in the table spec); model
		// them through the ctrl pseudo-field namespace: the apply writes
		// its table's output marker.
		writes = append(writes, pipeline.FieldRef("ctrl."+op.Table), pipeline.FieldRef(op.Table+".$hit"))
		return reads, writes
	case pipeline.RegReadOp:
		reads = append(readsOfExpr(op.Index), pipeline.FieldRef("reg:"+op.Reg))
		return reads, []pipeline.FieldRef{op.Dst}
	case pipeline.RegWriteOp:
		reads = append(readsOfExpr(op.Index), readsOfExpr(op.Src)...)
		return reads, []pipeline.FieldRef{pipeline.FieldRef("reg:" + op.Reg)}
	case pipeline.PushOp:
		reads = append(readsOfExpr(op.Src), pipeline.ArrayCount(op.Base))
		for i := 0; i < op.Cap; i++ {
			reads = append(reads, pipeline.ArraySlot(op.Base, i))
			writes = append(writes, pipeline.ArraySlot(op.Base, i))
		}
		writes = append(writes, pipeline.ArrayCount(op.Base))
		return reads, writes
	case pipeline.SetSlotOp:
		reads = append(readsOfExpr(op.Index), readsOfExpr(op.Src)...)
		reads = append(reads, pipeline.ArrayCount(op.Base))
		for i := 0; i < op.Cap; i++ {
			writes = append(writes, pipeline.ArraySlot(op.Base, i))
		}
		writes = append(writes, pipeline.ArrayCount(op.Base))
		return reads, writes
	case pipeline.ReportOp:
		for _, a := range op.Args {
			reads = append(reads, readsOfExpr(a)...)
		}
		return reads, nil
	}
	return nil, nil
}

func readsOfExpr(e pipeline.Expr) []pipeline.FieldRef {
	var out []pipeline.FieldRef
	var walk func(pipeline.Expr)
	walk = func(e pipeline.Expr) {
		switch e := e.(type) {
		case pipeline.Field:
			out = append(out, e.Ref)
		case pipeline.Unary:
			walk(e.X)
		case pipeline.Bin:
			walk(e.X)
			walk(e.Y)
		case pipeline.Mux:
			walk(e.Cond)
			walk(e.X)
			walk(e.Y)
		}
	}
	walk(e)
	return out
}
