package resources

import (
	"testing"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/pipeline"
)

func analyzeCorpus(t *testing.T, key string) Report {
	t.Helper()
	info := checkers.MustParse(key)
	prog, err := compiler.Compile(info, compiler.Options{Name: key})
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(prog)
}

func TestAllocateContainers(t *testing.T) {
	tests := []struct {
		widths []int
		want   int
	}{
		{nil, 0},
		{[]int{8}, 8},
		{[]int{5}, 8},
		{[]int{9}, 16},
		{[]int{16}, 16},
		{[]int{17}, 32},
		{[]int{32}, 32},
		{[]int{48}, 48}, // 32 + 16
		{[]int{33}, 40}, // 32 + 8
		{[]int{64}, 64}, // 2 × 32
		{[]int{1}, 8},   // one flag still burns a container
		{[]int{1, 1, 1, 1, 1, 1, 1, 1}, 8},
		{[]int{1, 1, 1, 1, 1, 1, 1, 1, 1}, 16}, // ninth flag spills
		{[]int{8, 1, 16, 1}, 32},
	}
	for _, tt := range tests {
		if got := AllocateContainers(tt.widths); got != tt.want {
			t.Errorf("AllocateContainers(%v) = %d, want %d", tt.widths, got, tt.want)
		}
	}
}

func TestChainLength(t *testing.T) {
	f := func(r string, w int) pipeline.Field {
		return pipeline.Field{Ref: pipeline.FieldRef(r), Width: w}
	}
	// Independent assignments: depth 1.
	ops := []pipeline.Op{
		pipeline.AssignOp{Dst: "a", DstWidth: 8, Src: pipeline.C(8, 1)},
		pipeline.AssignOp{Dst: "b", DstWidth: 8, Src: pipeline.C(8, 2)},
	}
	if got := ChainLength(ops); got != 1 {
		t.Fatalf("independent ops: chain %d, want 1", got)
	}
	// a -> b -> c: depth 3.
	ops = []pipeline.Op{
		pipeline.AssignOp{Dst: "a", DstWidth: 8, Src: pipeline.C(8, 1)},
		pipeline.AssignOp{Dst: "b", DstWidth: 8, Src: f("a", 8)},
		pipeline.AssignOp{Dst: "c", DstWidth: 8, Src: f("b", 8)},
	}
	if got := ChainLength(ops); got != 3 {
		t.Fatalf("chained ops: chain %d, want 3", got)
	}
	// Table apply feeding a branch that assigns: apply(1) -> if cond(uses
	// output) gates assign at stage 2.
	ops = []pipeline.Op{
		pipeline.ApplyOp{Table: "t", Keys: []pipeline.Expr{f("hdr.x", 8)}},
		pipeline.IfOp{
			Cond: pipeline.Bin{Op: pipeline.OpEq, X: f("ctrl.t", 8), Y: pipeline.C(8, 1)},
			Then: []pipeline.Op{pipeline.AssignOp{Dst: "y", DstWidth: 8, Src: pipeline.C(8, 1)}},
		},
	}
	if got := ChainLength(ops); got != 2 {
		t.Fatalf("apply+branch: chain %d, want 2", got)
	}
	// Register read-modify-write serializes through the register.
	ops = []pipeline.Op{
		pipeline.RegReadOp{Reg: "r", Index: pipeline.C(8, 0), Dst: "v", Width: 8},
		pipeline.RegWriteOp{Reg: "r", Index: pipeline.C(8, 0), Src: f("v", 8)},
		pipeline.RegReadOp{Reg: "r", Index: pipeline.C(8, 0), Dst: "w", Width: 8},
	}
	if got := ChainLength(ops); got != 3 {
		t.Fatalf("register chain: %d, want 3", got)
	}
}

func TestCorpusFitsBaselineStages(t *testing.T) {
	// §6.2: "each of the checkers can be executed in parallel alongside
	// the base program and they do not increase the number of stages".
	for _, p := range checkers.All {
		r := analyzeCorpus(t, p.Key)
		if r.StandaloneStages > BaselineStages {
			t.Errorf("%s: standalone chain %d exceeds the %d-stage baseline", p.Key, r.StandaloneStages, BaselineStages)
		}
		if r.MergedStages != BaselineStages {
			t.Errorf("%s: merged stages %d, want %d", p.Key, r.MergedStages, BaselineStages)
		}
		if r.StandaloneStages <= 0 {
			t.Errorf("%s: nonpositive chain", p.Key)
		}
	}
}

func TestPHVOverheadShape(t *testing.T) {
	// The model must reproduce Table 1's shape: every checker adds a
	// modest amount of PHV (under ~12 points) and stays above baseline.
	byKey := map[string]Report{}
	for _, p := range checkers.All {
		r := analyzeCorpus(t, p.Key)
		byKey[p.Key] = r
		if r.PHVPct <= BaselinePHVPct {
			t.Errorf("%s: PHV %.2f%% not above baseline", p.Key, r.PHVPct)
		}
		if r.PHVPct > BaselinePHVPct+12 {
			t.Errorf("%s: PHV %.2f%% implausibly high", p.Key, r.PHVPct)
		}
	}
	// The paper's two most expensive checkers are source-routing path
	// validation and application filtering ("the properties that require
	// the most PHV"); the model must agree that source routing tops the
	// corpus and both sit above the cheap checkers.
	sr := byKey["source-routing"].AddedPHVBits
	af := byKey["app-filtering"].AddedPHVBits
	for _, cheap := range []string{"waypointing", "egress-validity", "vlan-isolation", "multi-tenancy"} {
		if byKey[cheap].AddedPHVBits >= sr {
			t.Errorf("%s (%d bits) should cost less PHV than source-routing (%d)", cheap, byKey[cheap].AddedPHVBits, sr)
		}
		if byKey[cheap].AddedPHVBits >= af {
			t.Errorf("%s (%d bits) should cost less PHV than app-filtering (%d)", cheap, byKey[cheap].AddedPHVBits, af)
		}
	}
	// Waypointing carries a single boolean: it must be among the very
	// cheapest.
	if byKey["waypointing"].HeaderFieldBits > 32 {
		t.Errorf("waypointing header bits = %d, want tiny", byKey["waypointing"].HeaderFieldBits)
	}
}

func TestReportFieldsPopulated(t *testing.T) {
	r := analyzeCorpus(t, "load-balance")
	if r.Registers != 2 {
		t.Errorf("registers = %d, want 2", r.Registers)
	}
	if r.Tables != 4 { // left_port, right_port, thresh, is_uplink
		t.Errorf("tables = %d, want 4", r.Tables)
	}
	if r.ChainTelemetry < 2 {
		t.Errorf("telemetry chain = %d, want >= 2 (register read-modify-write)", r.ChainTelemetry)
	}
	if r.HeaderContainerBits < r.HeaderFieldBits {
		t.Errorf("container bits %d below field bits %d", r.HeaderContainerBits, r.HeaderFieldBits)
	}
}
