package faults

import (
	"bytes"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netsim"
)

func TestSubSeed(t *testing.T) {
	if SubSeed(1, "a") != SubSeed(1, "a") {
		t.Error("SubSeed not stable for identical inputs")
	}
	seen := map[int64]string{}
	for _, base := range []int64{0, 1, 42} {
		for _, name := range []string{"link:drop", "link:corrupt", "node:misroute"} {
			s := SubSeed(base, name)
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: (%d,%s) vs %s", base, name, prev)
			}
			seen[s] = name
		}
	}
}

func TestWithhold(t *testing.T) {
	a := Withhold(7, 100, 0.3)
	b := Withhold(7, 100, 0.3)
	n := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Withhold not deterministic at %d", i)
		}
		if a[i] {
			n++
		}
	}
	if n == 0 || n == 100 {
		t.Errorf("Withhold(rate=0.3) selected %d/100", n)
	}
	for i, w := range Withhold(7, 50, 0) {
		if w {
			t.Fatalf("rate 0 withheld item %d", i)
		}
	}
	for i, w := range Withhold(7, 50, 1) {
		if !w {
			t.Fatalf("rate 1 kept item %d", i)
		}
	}
}

// TestLinkFaultsDeterministic replays the same frame sequence through
// two injectors with the same seed: every verdict, buffer mutation,
// and counter must match.
func TestLinkFaultsDeterministic(t *testing.T) {
	cfg := LinkFaultConfig{
		DropRate: 0.2, CorruptRate: 0.2,
		DupRate: 0.2, DupDelay: 5 * netsim.Microsecond,
		ReorderRate: 0.2, ReorderJitter: 10 * netsim.Microsecond,
	}
	f1 := NewLinkFaults(SubSeed(3, "link"), cfg)
	f2 := NewLinkFaults(SubSeed(3, "link"), cfg)
	for i := 0; i < 500; i++ {
		b1 := bytes.Repeat([]byte{byte(i)}, 64)
		b2 := bytes.Repeat([]byte{byte(i)}, 64)
		now := netsim.Time(i) * netsim.Microsecond
		a1 := f1.Apply(now, i%2 == 0, b1)
		a2 := f2.Apply(now, i%2 == 0, b2)
		if a1 != a2 {
			t.Fatalf("frame %d: actions diverge: %+v vs %+v", i, a1, a2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("frame %d: corruption diverges", i)
		}
	}
	if f1.Dropped != f2.Dropped || f1.Corrupted != f2.Corrupted ||
		f1.Duplicated != f2.Duplicated || f1.Reordered != f2.Reordered {
		t.Errorf("counters diverge: %+v vs %+v", *f1, *f2)
	}
	if f1.Dropped == 0 || f1.Corrupted == 0 || f1.Duplicated == 0 || f1.Reordered == 0 {
		t.Errorf("a 20%% class injected nothing over 500 frames: %+v", *f1)
	}
}

// TestLinkFaultsDisabled pins the zero-config contract: no action, no
// mutation, no counter movement.
func TestLinkFaultsDisabled(t *testing.T) {
	f := NewLinkFaults(1, LinkFaultConfig{})
	buf := bytes.Repeat([]byte{0xAB}, 64)
	want := append([]byte(nil), buf...)
	for i := 0; i < 100; i++ {
		if act := f.Apply(netsim.Time(i), true, buf); act != (netsim.FaultAction{}) {
			t.Fatalf("disabled injector acted: %+v", act)
		}
	}
	if !bytes.Equal(buf, want) {
		t.Error("disabled injector mutated the frame")
	}
	if f.Dropped+f.Corrupted+f.Duplicated+f.Reordered+f.FlapDropped != 0 {
		t.Errorf("disabled injector counted events: %+v", *f)
	}
}

// TestLinkFaultsFlapSchedule pins the deterministic down-window
// arithmetic: down during the first FlapDown of every FlapPeriod.
func TestLinkFaultsFlapSchedule(t *testing.T) {
	f := NewLinkFaults(1, LinkFaultConfig{
		FlapPeriod: 100 * netsim.Microsecond,
		FlapDown:   10 * netsim.Microsecond,
	})
	for _, tc := range []struct {
		at   netsim.Time
		down bool
	}{
		{0, true},
		{9 * netsim.Microsecond, true},
		{10 * netsim.Microsecond, false},
		{99 * netsim.Microsecond, false},
		{100 * netsim.Microsecond, true},
		{109 * netsim.Microsecond, true},
		{110 * netsim.Microsecond, false},
		{250 * netsim.Microsecond, false},
	} {
		act := f.Apply(tc.at, true, nil)
		if act.Drop != tc.down {
			t.Errorf("at %d: drop = %v, want %v", tc.at, act.Drop, tc.down)
		}
	}
	if f.FlapDropped != 4 {
		t.Errorf("FlapDropped = %d, want 4", f.FlapDropped)
	}
}

// recordProgram is a trivial forwarding program that counts invocations
// and routes everything to port 9.
type recordProgram struct{ calls int }

func (p *recordProgram) Process(_ *netsim.Switch, _ *dataplane.Decoded, meta *netsim.PacketMeta) []netsim.Egress {
	p.calls++
	return meta.OneEgress(9)
}

// TestNodeFaults drives the forwarding wrapper through its three
// classes on a real simulator clock.
func TestNodeFaults(t *testing.T) {
	sim := netsim.NewSimulator()
	sw := netsim.NewSwitch(sim, 7, "victim")
	inner := &recordProgram{}
	sw.Forwarding = inner
	nf := WrapNode(sw, 1, NodeFaultConfig{
		MisrouteRate: 1, MisroutePort: 3,
		CrashAt: 100 * netsim.Microsecond, CrashUntil: 200 * netsim.Microsecond,
	})
	if sw.Forwarding != netsim.ForwardingProgram(nf) {
		t.Fatal("WrapNode did not interpose")
	}

	pkt := &dataplane.Decoded{}
	meta := &netsim.PacketMeta{}
	var got [][]netsim.Egress
	for _, at := range []netsim.Time{0, 150 * netsim.Microsecond, 300 * netsim.Microsecond} {
		sim.At(at, func() { got = append(got, nf.Process(sw, pkt, meta)) })
	}
	sim.RunAll()

	if len(got) != 3 {
		t.Fatalf("ran %d probes, want 3", len(got))
	}
	// Before and after the crash window: misroute (rate 1) overrides the
	// egress but still runs the real program for its packet rewrites.
	for _, i := range []int{0, 2} {
		if len(got[i]) != 1 || got[i][0].Port != 3 {
			t.Errorf("probe %d: egress %v, want misroute port 3", i, got[i])
		}
	}
	// Inside the window: blackhole, inner never runs.
	if got[1] != nil {
		t.Errorf("crashed switch forwarded: %v", got[1])
	}
	if inner.calls != 2 {
		t.Errorf("inner program ran %d times, want 2", inner.calls)
	}
	if nf.Misrouted != 2 || nf.CrashDropped != 1 {
		t.Errorf("counters misroute=%d crash=%d, want 2/1", nf.Misrouted, nf.CrashDropped)
	}
}

// TestNodeFaultsTeleRewrite pins the rogue rewrite: the Hydra blob is
// zeroed in place with its shape (length) preserved.
func TestNodeFaultsTeleRewrite(t *testing.T) {
	sim := netsim.NewSimulator()
	sw := netsim.NewSwitch(sim, 7, "rogue")
	inner := &recordProgram{}
	sw.Forwarding = inner
	nf := WrapNode(sw, 1, NodeFaultConfig{TeleRewriteRate: 1})

	pkt := &dataplane.Decoded{}
	pkt.InsertHydra([]byte{1, 2, 3, 4, 5})
	out := nf.Process(sw, pkt, &netsim.PacketMeta{})
	if len(out) != 1 || out[0].Port != 9 {
		t.Errorf("egress %v, want inner's port 9", out)
	}
	if len(pkt.Hydra.Blob) != 5 {
		t.Errorf("blob length changed to %d (shape must be preserved)", len(pkt.Hydra.Blob))
	}
	if !bytes.Equal(pkt.Hydra.Blob, make([]byte, 5)) {
		t.Errorf("blob not zeroed: %v", pkt.Hydra.Blob)
	}
	if nf.Rewritten != 1 {
		t.Errorf("Rewritten = %d, want 1", nf.Rewritten)
	}
}

// TestWipeAttachments models the restart register wipe: installed state
// vanishes, the program's factory state takes its place.
func TestWipeAttachments(t *testing.T) {
	sim := netsim.NewSimulator()
	sw := netsim.NewSwitch(sim, 7, "reboot")
	rt := mustCompileChecker(t, "vlan-isolation")
	att := sw.AttachChecker(rt, nil)

	tbl := att.State.Tables["vlan_members"]
	if tbl == nil {
		t.Fatal("vlan-isolation has no vlan_members table")
	}
	if err := tbl.Insert(pipelineEntryKey0()); err != nil {
		t.Fatalf("seeding table: %v", err)
	}
	if tbl.Len() == 0 {
		t.Fatal("insert did not land")
	}

	if n := WipeAttachments(sw); n != 1 {
		t.Fatalf("wiped %d attachments, want 1", n)
	}
	if att.State.Tables["vlan_members"].Len() != 0 {
		t.Error("wiped state still holds installed entries")
	}
}
