//go:build !race

package faults

const raceEnabled = false
