//go:build race

package faults

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-count tests skip themselves under it because the
// detector's shadow allocations break testing.AllocsPerRun.
const raceEnabled = true
