// Package faults is the deterministic, seeded fault-injection substrate
// for the simulator and control plane. Hydra's value is only measurable
// under failure: the paper validates its checkers against misconfigured
// UPFs, broken source routes, and looping topologies (§5), but a healthy
// replay exercises nothing except the pass path. This package turns
// every corpus checker into a measurable detector by injecting the
// paper's bug taxonomy on purpose:
//
//   - Link-level faults (LinkFaults, hooked into netsim.Link.Fault):
//     probabilistic drop, single-bit corruption, duplication, reordering
//     via jittered delay, and link-flap schedules. The hook is one nil
//     check on the wire path — links without faults keep the
//     zero-allocation fast path byte-for-byte.
//   - Node-level faults (NodeFaults, a ForwardingProgram wrapper):
//     misrouted next-hops, rogue in-place telemetry rewrites (a
//     compromised switch scribbling on the Hydra blob), and crash
//     windows during which the switch blackholes everything. Register
//     wipe on restart is modeled by WipeAttachments /
//     controlplane.Controller.WipeSwitch.
//   - Control-plane faults: Withhold selects a deterministic subset of
//     installs to suppress (partial table installs); delayed installs
//     are ordinary simulator events the scenario runner schedules.
//
// # Determinism contract
//
// Every fault site owns a rand.Rand seeded from (campaign seed,
// component name) via SubSeed. The simulator executes each node's
// events in a deterministic order — including under
// netsim.Simulator.Partition, where a node's callbacks run on exactly
// one shard in a shard-count-invariant order — so the sequence of
// random draws — and therefore every drop, flip, duplicate, and
// misroute — is a pure function of the seed and the fault
// configuration. Two runs with the same seed and config produce
// byte-identical fault schedules and byte-identical detection matrices
// at every shard count (pinned by TestChaosDeterministic and
// TestChaosShardInvariant in internal/experiments). Rates of zero draw
// nothing from the RNG, so a disabled fault class cannot perturb
// another class's stream.
//
// Parallel constraint: a LinkFaults injector runs on the shard of the
// frame's *sender* (netsim.Link.Send applies it in the sender's
// execution context). An injector shared across several links
// therefore stays deterministic — and race-free — only if every frame
// it intercepts is sent by nodes of one shard; in practice, attach a
// shared injector only to links whose sending side is a single switch
// (the chaos campaign's leaf-1 uplinks qualify: campus traffic flows
// one way, so only leaf 1 transmits on them). NodeFaults wrap a single
// switch's forwarding program and are shard-safe by construction.
package faults

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
)

// Class identifies one fault class of the chaos campaign.
type Class string

// The fault taxonomy. Link-level classes perturb frames on the wire;
// node-level classes model misbehaving or crashing switches; the
// control-plane classes model installs that never (or only later)
// reach the switch.
const (
	Drop           Class = "drop"
	Corrupt        Class = "corrupt"
	Duplicate      Class = "duplicate"
	Reorder        Class = "reorder"
	Flap           Class = "flap"
	Misroute       Class = "misroute"
	TeleRewrite    Class = "tele-rewrite"
	Crash          Class = "crash"
	StaleTable     Class = "stale-table"
	PartialInstall Class = "partial-install"
	DelayedInstall Class = "delayed-install"
)

// Classes returns every fault class in canonical campaign order.
func Classes() []Class {
	return []Class{
		Drop, Corrupt, Duplicate, Reorder, Flap,
		Misroute, TeleRewrite, Crash, StaleTable,
		PartialInstall, DelayedInstall,
	}
}

// SubSeed derives a stable per-component seed from the campaign seed
// and a component name, so each fault site draws from an independent
// stream and adding a site never shifts another site's draws.
func SubSeed(base int64, name string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// Withhold deterministically selects ~rate of n items to withhold from
// installation (the partial-install fault): out[i] is true when item i
// must NOT be installed.
func Withhold(seed int64, n int, rate float64) []bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bool, n)
	if rate <= 0 {
		return out
	}
	for i := range out {
		out[i] = rng.Float64() < rate
	}
	return out
}
