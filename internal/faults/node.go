package faults

import (
	"math/rand"

	"repro/internal/dataplane"
	"repro/internal/netsim"
)

// NodeFaultConfig selects the node-level fault classes for one switch.
// As with links, a zero rate disables a class without touching the RNG.
type NodeFaultConfig struct {
	// MisrouteRate is the per-packet probability of overriding the
	// forwarding decision with MisroutePort — a stale or corrupted
	// next-hop entry sending traffic the wrong way.
	MisrouteRate float64
	MisroutePort int
	// TeleRewriteRate is the per-packet probability of a rogue rewrite:
	// the switch zeroes the packet's Hydra telemetry blob in place
	// (shape preserved), modeling a compromised or buggy node scrubbing
	// the evidence upstream hops recorded.
	TeleRewriteRate float64
	// CrashAt/CrashUntil define a crash window [CrashAt, CrashUntil):
	// while down, the switch blackholes every packet (forwarding returns
	// nil — a silent drop, exactly what a dead linecard does). Restart
	// with register wipe is modeled separately via WipeAttachments or
	// controlplane.(*Controller).WipeSwitch at the restart instant.
	CrashAt    netsim.Time
	CrashUntil netsim.Time
}

// NodeFaults wraps a switch's ForwardingProgram with fault behavior.
// Like the program it wraps, it runs on the simulator's single thread.
type NodeFaults struct {
	inner netsim.ForwardingProgram
	cfg   NodeFaultConfig
	rng   *rand.Rand

	Misrouted    uint64
	Rewritten    uint64
	CrashDropped uint64
}

// WrapNode interposes a seeded NodeFaults between sw and its current
// forwarding program, and returns the injector for counter inspection.
func WrapNode(sw *netsim.Switch, seed int64, cfg NodeFaultConfig) *NodeFaults {
	nf := &NodeFaults{inner: sw.Forwarding, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	sw.Forwarding = nf
	return nf
}

// Process implements netsim.ForwardingProgram. Crash windows are
// checked first (time-driven); tele-rewrite and misroute then draw in
// that fixed order.
func (f *NodeFaults) Process(sw *netsim.Switch, pkt *dataplane.Decoded, meta *netsim.PacketMeta) []netsim.Egress {
	if f.cfg.CrashUntil > f.cfg.CrashAt {
		if now := sw.Sim().Now(); now >= f.cfg.CrashAt && now < f.cfg.CrashUntil {
			f.CrashDropped++
			return nil
		}
	}
	if f.cfg.TeleRewriteRate > 0 && f.rng.Float64() < f.cfg.TeleRewriteRate && len(pkt.Hydra.Blob) > 0 {
		f.Rewritten++
		for i := range pkt.Hydra.Blob {
			pkt.Hydra.Blob[i] = 0
		}
	}
	if f.cfg.MisrouteRate > 0 && f.rng.Float64() < f.cfg.MisrouteRate {
		f.Misrouted++
		if f.inner != nil {
			// Run the real program first so its packet rewrites (TTL
			// decrement, telemetry-relevant header edits) still happen;
			// only the egress decision is overridden.
			f.inner.Process(sw, pkt, meta)
		}
		return meta.OneEgress(f.cfg.MisroutePort)
	}
	if f.inner == nil {
		return nil
	}
	return f.inner.Process(sw, pkt, meta)
}

// WipeAttachment resets one checker attachment to factory state — the
// register wipe of a switch restart: every table entry and register
// value the control plane installed is lost until reinstalled.
func WipeAttachment(att *netsim.HydraAttachment) {
	if att == nil || att.Runtime == nil {
		return
	}
	att.State = att.Runtime.Prog.NewState()
}

// WipeAttachments wipes every checker attachment on the switch,
// returning how many were reset.
func WipeAttachments(sw *netsim.Switch) int {
	n := 0
	for _, att := range sw.Checkers {
		WipeAttachment(att)
		n++
	}
	return n
}
