package faults

import (
	"testing"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/pipeline"
)

// mustCompileChecker compiles one corpus checker into a runtime.
func mustCompileChecker(t *testing.T, key string) *compiler.Runtime {
	t.Helper()
	info := checkers.MustParse(key)
	prog, err := compiler.Compile(info, compiler.Options{Name: key})
	if err != nil {
		t.Fatal(err)
	}
	return &compiler.Runtime{Prog: prog}
}

// pipelineEntryKey0 is a vlan_members-shaped entry: key 0 -> member.
func pipelineEntryKey0() pipeline.Entry {
	return pipeline.Entry{
		Keys:   []pipeline.KeyMatch{pipeline.ExactKey(0)},
		Action: []pipeline.Value{pipeline.B(1, 1)},
	}
}
