package faults

import (
	"math/rand"

	"repro/internal/netsim"
)

// LinkFaultConfig selects which wire-level fault classes an injector
// applies and at what intensity. A zero rate disables a class entirely:
// it draws nothing from the RNG, so enabling one class never shifts the
// random stream of another.
type LinkFaultConfig struct {
	// DropRate is the per-frame probability of wire loss.
	DropRate float64
	// CorruptRate is the per-frame probability of a single-bit flip at a
	// random offset past the Ethernet header (the first 14 bytes are
	// spared so the frame still reaches the victim's parser, as a
	// payload CRC failure would on real gear that forwards anyway).
	CorruptRate float64
	// DupRate is the per-frame probability of delivering a second copy
	// DupDelay after the original.
	DupRate  float64
	DupDelay netsim.Time
	// ReorderRate is the per-frame probability of delaying the frame by
	// a uniform jitter in (0, ReorderJitter], letting later frames
	// overtake it.
	ReorderRate   float64
	ReorderJitter netsim.Time
	// FlapPeriod/FlapDown describe a deterministic link-flap schedule:
	// the link is down (all frames lost) during the first FlapDown of
	// every FlapPeriod, starting at time zero. Both must be positive for
	// flapping to engage.
	FlapPeriod netsim.Time
	FlapDown   netsim.Time
}

// LinkFaults is a seeded netsim.LinkFault implementing the wire-level
// fault classes. It is not safe for concurrent use: its execution
// context is the event loop of the sending endpoint's shard, so when
// one injector is shared across links of a partitioned simulator,
// every intercepted frame must originate from a single shard's nodes
// (see the package comment's parallel constraint).
type LinkFaults struct {
	cfg LinkFaultConfig
	rng *rand.Rand

	// Per-class event counters, for scenario accounting and tests.
	Dropped     uint64
	Corrupted   uint64
	Duplicated  uint64
	Reordered   uint64
	FlapDropped uint64
}

// NewLinkFaults builds an injector with its own RNG stream. Attach it
// with link.Fault = f.
func NewLinkFaults(seed int64, cfg LinkFaultConfig) *LinkFaults {
	return &LinkFaults{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Apply implements netsim.LinkFault. The flap schedule is checked
// first (it is time-driven, not random); the probabilistic classes
// then draw in a fixed order — drop, corrupt, duplicate, reorder —
// each guarded by its rate so disabled classes consume no draws.
func (f *LinkFaults) Apply(now netsim.Time, fromA bool, buf []byte) netsim.FaultAction {
	var act netsim.FaultAction
	if f.cfg.FlapPeriod > 0 && f.cfg.FlapDown > 0 && now%f.cfg.FlapPeriod < f.cfg.FlapDown {
		f.FlapDropped++
		act.Drop = true
		return act
	}
	if f.cfg.DropRate > 0 && f.rng.Float64() < f.cfg.DropRate {
		f.Dropped++
		act.Drop = true
		return act
	}
	if f.cfg.CorruptRate > 0 && f.rng.Float64() < f.cfg.CorruptRate && len(buf) > 15 {
		off := 14 + f.rng.Intn(len(buf)-14)
		buf[off] ^= 1 << uint(f.rng.Intn(8))
		f.Corrupted++
	}
	if f.cfg.DupRate > 0 && f.rng.Float64() < f.cfg.DupRate {
		f.Duplicated++
		act.Duplicate = true
		act.DupDelay = f.cfg.DupDelay
	}
	if f.cfg.ReorderRate > 0 && f.cfg.ReorderJitter > 0 && f.rng.Float64() < f.cfg.ReorderRate {
		f.Reordered++
		act.ExtraDelay = netsim.Time(1 + f.rng.Int63n(int64(f.cfg.ReorderJitter)))
	}
	return act
}
