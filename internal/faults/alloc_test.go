package faults

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netsim"
)

// nullNode terminates a link and immediately recycles every frame.
type nullNode struct {
	sim *netsim.Simulator
	rx  uint64
}

func (n *nullNode) NodeName() string { return "null" }
func (n *nullNode) Receive(frame []byte, port int) {
	n.rx++
	n.sim.ReleaseFrame(frame)
}

// onePortProgram forwards everything to a fixed port.
type onePortProgram struct{ port int }

func (p onePortProgram) Process(_ *netsim.Switch, _ *dataplane.Decoded, meta *netsim.PacketMeta) []netsim.Egress {
	return meta.OneEgress(p.port)
}

// TestFaultHookAllocs is the disabled-cost acceptance check: a real
// LinkFaults injector with every rate at zero attached to the wire must
// keep the telemetry-only hop inside the same one-allocation budget as
// netsim's TestWireAllocs — the hook may not perturb the zero-alloc
// fast path, draw from its RNG, or count anything.
func TestFaultHookAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	sim := netsim.NewSimulator()
	sw := netsim.NewSwitch(sim, 7, "mid")
	sw.Forwarding = onePortProgram{port: 1}
	sink := &nullNode{sim: sim}
	lk := netsim.Connect(sim, sw, 1, sink, 0, 0, 0)
	sw.AttachLink(1, lk)

	rt := mustCompileChecker(t, "loop-freedom")
	sw.AttachChecker(rt, nil)

	// The injector is attached but fully disabled: zero rates, no flap.
	lf := NewLinkFaults(SubSeed(1, "zero"), LinkFaultConfig{})
	lk.Fault = lf

	// Template frame with the Hydra blob a first-hop switch would have
	// injected (one checker attached, so the blob is its slot alone).
	pkt := &dataplane.Decoded{
		Eth:     dataplane.Ethernet{Dst: dataplane.MACFromUint64(2), Src: dataplane.MACFromUint64(1), Type: dataplane.EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    dataplane.IPv4{TTL: 8, Protocol: dataplane.ProtoUDP, Src: dataplane.MustIP4("10.0.0.1"), Dst: dataplane.MustIP4("10.0.0.2")},
		HasUDP:  true,
		UDP:     dataplane.UDP{SrcPort: 1234, DstPort: 80},
		Payload: make([]byte, 64),
	}
	pkt.InsertHydra(make([]byte, (rt.Prog.TeleWireBits()+7)/8))
	template := pkt.Serialize()

	hop := func() {
		frame := sim.AcquireFrame(len(template))
		copy(frame, template)
		sw.Receive(frame, 2)
		sim.RunAll()
	}
	for i := 0; i < 32; i++ {
		hop()
	}

	const rounds = 200
	allocs := testing.AllocsPerRun(rounds, hop)
	if allocs > 1 {
		t.Fatalf("telemetry-only hop with a disabled fault hook costs %.1f allocs, budget 1", allocs)
	}
	if sink.rx == 0 {
		t.Fatal("sink saw no frames")
	}
	if n := lf.Dropped + lf.Corrupted + lf.Duplicated + lf.Reordered + lf.FlapDropped; n != 0 {
		t.Fatalf("disabled injector counted %d events", n)
	}
	if lk.FaultDropsAB+lk.FaultDropsBA != 0 {
		t.Fatalf("disabled injector dropped frames: %d/%d", lk.FaultDropsAB, lk.FaultDropsBA)
	}
}
