package reportbus

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Bus is one violation-digest pipeline: a set of producers feeding a
// windowed, storm-controlled aggregation table that emits to exporters.
//
// Two ingest disciplines coexist on one bus. Ring producers are for
// concurrent sources (engine shards): each owns an SPSC ring drained by
// the collector goroutine (Start) or by explicit Flush/Close. Inline
// producers are for single-threaded embedders (the netsim event loop
// via the control plane): Publish delivers under the bus mutex and the
// per-digest tap fires synchronously, preserving the reactive OnReport
// semantics simulations rely on.
type Bus struct {
	cfg Config

	mu        sync.Mutex
	producers []*Producer
	// live is the aggregate table: the open window plus storm-deferred
	// carryover. ovf holds the per-(checker, switch) overflow buckets
	// that absorb digests once live hits MaxKeys.
	live map[Key]*Aggregate
	ovf  map[ovfKey]*Aggregate
	// buckets are the per-checker storm-control token buckets.
	buckets     map[string]*bucket
	checkers    map[string]*checkerStats
	windowStart int64
	windowOpen  bool
	liveDigests uint64
	maxLive     int

	// taps observe every delivered digest pre-aggregation:
	// Config.OnDigest plus anything added via Tap. Append-only.
	taps []func(Digest)

	started bool
	stop    chan struct{}
	done    chan struct{}

	// sweepMu serializes whole sweeps; scratch is the drain buffer they
	// share. Held across the post-mutex tap/export phase so drained
	// digests are not clobbered by the next sweep mid-tap.
	sweepMu sync.Mutex
	scratch []Digest
}

type ovfKey struct {
	Checker  string
	SwitchID uint32
}

type checkerStats struct {
	delivered         uint64
	emittedAggregates uint64
	emittedDigests    uint64
	suppressed        uint64
	overflowDigests   uint64
}

// bucket is a token bucket over bus-clock nanoseconds.
type bucket struct {
	tokens float64
	last   int64
}

func (bk *bucket) take(now int64, rate, burst float64) bool {
	if rate <= 0 {
		return true
	}
	if el := now - bk.last; el > 0 {
		bk.tokens += float64(el) * rate / 1e9
		if bk.tokens > burst {
			bk.tokens = burst
		}
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true
	}
	return false
}

// New builds a bus; see Config for defaults.
func New(cfg Config) *Bus {
	b := &Bus{
		cfg:      cfg.withDefaults(),
		live:     map[Key]*Aggregate{},
		ovf:      map[ovfKey]*Aggregate{},
		buckets:  map[string]*bucket{},
		checkers: map[string]*checkerStats{},
	}
	if b.cfg.OnDigest != nil {
		b.taps = append(b.taps, b.cfg.OnDigest)
	}
	return b
}

// Tap registers an additional per-digest observer (see Config.OnDigest
// for when and where taps run). Register taps before publishing begins;
// digests already in flight may miss a late tap.
func (b *Bus) Tap(fn func(Digest)) {
	b.mu.Lock()
	b.taps = append(b.taps, fn)
	b.mu.Unlock()
}

// Now reads the bus clock.
func (b *Bus) Now() int64 { return b.cfg.Clock() }

// ---------------------------------------------------------------------------
// Producers

// Producer is one registered digest source.
type Producer struct {
	bus  *Bus
	name string
	// r is nil for inline producers.
	r        *ring
	enqueued atomic.Uint64
	// drops is the ring-full account, by checker; the drop path is cold
	// (it only runs once the bounded ring is already full), so a mutex
	// and map are fine there.
	dropMu sync.Mutex
	drops  map[string]uint64
}

// ProducerMetrics is one producer's ingest accounting.
type ProducerMetrics struct {
	Name     string
	Enqueued uint64
	Dropped  uint64
	// QueueDepth is a racy snapshot of digests waiting in the ring
	// (always 0 for inline producers).
	QueueDepth int
}

// RingProducer registers a producer with its own bounded SPSC ring.
// Publish must stay single-goroutine per producer; the collector is the
// only consumer.
func (b *Bus) RingProducer(name string) *Producer {
	p := &Producer{bus: b, name: name, r: newRing(b.cfg.RingSize), drops: map[string]uint64{}}
	b.mu.Lock()
	b.producers = append(b.producers, p)
	b.mu.Unlock()
	return p
}

// InlineProducer registers a producer that delivers synchronously under
// the bus mutex — safe from any goroutine, intended for single-threaded
// embedders that need the per-digest tap to fire before Publish returns.
func (b *Bus) InlineProducer(name string) *Producer {
	p := &Producer{bus: b, name: name, drops: map[string]uint64{}}
	b.mu.Lock()
	b.producers = append(b.producers, p)
	b.mu.Unlock()
	return p
}

// Publish enqueues one digest. It reports false — after accounting the
// drop — when the producer's ring is full; inline producers never drop.
func (p *Producer) Publish(d Digest) bool {
	b := p.bus
	if p.r == nil {
		p.enqueued.Add(1)
		b.mu.Lock()
		b.fold(d)
		emitted := b.maybeCloseWindow(d.At)
		taps := b.taps
		b.mu.Unlock()
		for _, tap := range taps {
			tap(d)
		}
		b.export(emitted)
		return true
	}
	if !p.r.push(d) {
		p.dropMu.Lock()
		p.drops[d.Checker]++
		p.dropMu.Unlock()
		return false
	}
	p.enqueued.Add(1)
	return true
}

func (p *Producer) droppedTotal() uint64 {
	p.dropMu.Lock()
	defer p.dropMu.Unlock()
	var n uint64
	for _, v := range p.drops {
		n += v
	}
	return n
}

// ---------------------------------------------------------------------------
// Collection

// fold merges one digest into the aggregate table. Caller holds b.mu.
func (b *Bus) fold(d Digest) {
	st := b.checkers[d.Checker]
	if st == nil {
		st = &checkerStats{}
		b.checkers[d.Checker] = st
	}
	st.delivered++
	if !b.windowOpen {
		b.windowOpen = true
		b.windowStart = d.At
	}
	k := Key{Checker: d.Checker, SwitchID: d.SwitchID, ArgsHash: d.ArgsHash}
	if agg, ok := b.live[k]; ok {
		bumpAgg(agg, d)
	} else if len(b.live) < b.cfg.MaxKeys {
		args := make([]uint64, d.NArgs)
		copy(args, d.Args[:d.NArgs])
		b.live[k] = &Aggregate{
			Checker: d.Checker, SwitchID: d.SwitchID, ArgsHash: d.ArgsHash,
			Args: args, Count: 1, FirstAt: d.At, LastAt: d.At,
		}
	} else {
		// Live-key budget exhausted: fold into the per-(checker, switch)
		// overflow bucket. Counts stay exact; args are gone.
		ok := ovfKey{Checker: d.Checker, SwitchID: d.SwitchID}
		agg := b.ovf[ok]
		if agg == nil {
			agg = &Aggregate{
				Checker: d.Checker, SwitchID: d.SwitchID,
				FirstAt: d.At, LastAt: d.At, Overflow: true,
			}
			b.ovf[ok] = agg
		}
		agg.Count++
		if d.At < agg.FirstAt {
			agg.FirstAt = d.At
		}
		if d.At > agg.LastAt {
			agg.LastAt = d.At
		}
		st.overflowDigests++
	}
	b.liveDigests++
	if n := len(b.live) + len(b.ovf); n > b.maxLive {
		b.maxLive = n
	}
}

func bumpAgg(agg *Aggregate, d Digest) {
	agg.Count++
	if d.At < agg.FirstAt {
		agg.FirstAt = d.At
	}
	if d.At > agg.LastAt {
		agg.LastAt = d.At
	}
}

// maybeCloseWindow closes the window if it has run its length, and
// returns the emitted batch (nil when the window stays open). Caller
// holds b.mu.
func (b *Bus) maybeCloseWindow(now int64) []Aggregate {
	if !b.windowOpen || now-b.windowStart < int64(b.cfg.Window) {
		return nil
	}
	return b.closeWindow(now, false)
}

// closeWindow runs the emission pass: every live aggregate that clears
// its checker's token bucket is emitted and cleared; the rest carry
// forward into the next window with Deferred incremented — storm
// control delays and coalesces, it never loses counts. force bypasses
// the buckets (final flush). Caller holds b.mu.
func (b *Bus) closeWindow(now int64, force bool) []Aggregate {
	var keys []Key
	for k := range b.live {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })
	var okeys []ovfKey
	for k := range b.ovf {
		okeys = append(okeys, k)
	}
	sort.Slice(okeys, func(i, j int) bool {
		if okeys[i].Checker != okeys[j].Checker {
			return okeys[i].Checker < okeys[j].Checker
		}
		return okeys[i].SwitchID < okeys[j].SwitchID
	})

	var out []Aggregate
	emit := func(agg *Aggregate) bool {
		bk := b.buckets[agg.Checker]
		if bk == nil {
			bk = &bucket{tokens: float64(b.cfg.Burst), last: now}
			b.buckets[agg.Checker] = bk
		}
		st := b.checkers[agg.Checker]
		if !force && !bk.take(now, b.cfg.Rate, float64(b.cfg.Burst)) {
			agg.Deferred++
			st.suppressed++
			return false
		}
		out = append(out, *agg)
		st.emittedAggregates++
		st.emittedDigests += agg.Count
		b.liveDigests -= agg.Count
		return true
	}
	for _, k := range keys {
		if emit(b.live[k]) {
			delete(b.live, k)
		}
	}
	for _, k := range okeys {
		if emit(b.ovf[k]) {
			delete(b.ovf, k)
		}
	}
	b.windowOpen = len(b.live)+len(b.ovf) > 0
	b.windowStart = now
	return out
}

// export hands a batch to the exporters, outside the bus mutex.
func (b *Bus) export(aggs []Aggregate) {
	if len(aggs) == 0 {
		return
	}
	for _, e := range b.cfg.Exporters {
		e.ExportAggregates(aggs)
	}
}

// sweep drains every ring into the aggregate table, then runs the
// window check; taps and exports fire after the bus mutex is released.
// sweepMu serializes sweeps (collector tick vs Flush/Close) — they
// share the scratch buffer and the rings' consumer side.
func (b *Bus) sweep(forceClose bool) {
	b.sweepMu.Lock()
	defer b.sweepMu.Unlock()
	b.mu.Lock()
	b.scratch = b.scratch[:0]
	for _, p := range b.producers {
		if p.r != nil {
			b.scratch = p.r.drainInto(b.scratch)
		}
	}
	for i := range b.scratch {
		b.fold(b.scratch[i])
	}
	now := b.Now()
	var emitted []Aggregate
	if forceClose {
		emitted = b.closeWindow(now, true)
	} else {
		emitted = b.maybeCloseWindow(now)
	}
	drained := b.scratch
	taps := b.taps
	b.mu.Unlock()

	for _, tap := range taps {
		for i := range drained {
			tap(drained[i])
		}
	}
	b.export(emitted)
}

// Start launches the collector goroutine, sweeping rings every
// Config.PollEvery. Inline producers work with or without Start.
func (b *Bus) Start() {
	b.mu.Lock()
	if b.started {
		b.mu.Unlock()
		return
	}
	b.started = true
	b.stop = make(chan struct{})
	b.done = make(chan struct{})
	b.mu.Unlock()
	go func() {
		defer close(b.done)
		t := time.NewTicker(b.cfg.PollEvery)
		defer t.Stop()
		for {
			select {
			case <-b.stop:
				return
			case <-t.C:
				b.sweep(false)
			}
		}
	}()
}

// Flush drains every ring and force-closes the window, emitting all
// live aggregates regardless of storm budget. The bus remains usable.
func (b *Bus) Flush() { b.sweep(true) }

// Close stops the collector (if started) and flushes. After Close
// every raised digest is accounted: emitted counts plus ring drops
// equal publishes exactly (Metrics.Unaccounted() == 0). Producers must
// have stopped publishing to rings before Close.
func (b *Bus) Close() {
	b.mu.Lock()
	started := b.started
	b.started = false
	b.mu.Unlock()
	if started {
		close(b.stop)
		<-b.done
	}
	b.Flush()
}

func lessKey(a, c Key) bool {
	if a.Checker != c.Checker {
		return a.Checker < c.Checker
	}
	if a.SwitchID != c.SwitchID {
		return a.SwitchID < c.SwitchID
	}
	return a.ArgsHash < c.ArgsHash
}

// ---------------------------------------------------------------------------
// Metrics

// CheckerMetrics is one checker's digest accounting.
type CheckerMetrics struct {
	// Delivered digests reached the aggregation table; Dropped were
	// rejected by full ingest rings. Delivered+Dropped is every digest
	// the checker raised.
	Delivered uint64
	Dropped   uint64
	// EmittedDigests sums the counts of emitted aggregates; Suppressed
	// counts storm-control deferrals (aggregate-windows held back — the
	// digests themselves are carried, not lost).
	EmittedAggregates uint64
	EmittedDigests    uint64
	Suppressed        uint64
	// OverflowDigests were folded into overflow buckets (counted
	// exactly, args dropped) after the live-key budget filled.
	OverflowDigests uint64
}

// Metrics is a point-in-time snapshot of the bus.
type Metrics struct {
	Producers []ProducerMetrics
	Checkers  map[string]CheckerMetrics
	// LiveAggregates / LiveDigests measure the collector's current
	// memory; MaxLiveAggregates is the high-water mark, bounded by
	// Config.MaxKeys plus the overflow buckets.
	LiveAggregates    int
	MaxLiveAggregates int
	LiveDigests       uint64
	// Totals across producers and checkers.
	Published      uint64
	Dropped        uint64
	Delivered      uint64
	EmittedDigests uint64
}

// Unaccounted is the digest conservation check: publishes minus drops,
// emissions, and still-live counts. It is 0 after Close — nothing is
// silently lost.
func (m Metrics) Unaccounted() int64 {
	return int64(m.Published) - int64(m.Dropped) - int64(m.EmittedDigests) - int64(m.LiveDigests)
}

// Metrics snapshots the bus counters.
func (b *Bus) Metrics() Metrics {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := Metrics{
		Checkers:          make(map[string]CheckerMetrics, len(b.checkers)),
		LiveAggregates:    len(b.live) + len(b.ovf),
		MaxLiveAggregates: b.maxLive,
		LiveDigests:       b.liveDigests,
	}
	drops := map[string]uint64{}
	for _, p := range b.producers {
		pm := ProducerMetrics{Name: p.name, Enqueued: p.enqueued.Load(), Dropped: p.droppedTotal()}
		if p.r != nil {
			pm.QueueDepth = p.r.depth()
		}
		p.dropMu.Lock()
		for c, n := range p.drops {
			drops[c] += n
		}
		p.dropMu.Unlock()
		m.Producers = append(m.Producers, pm)
		m.Published += pm.Enqueued + pm.Dropped
		m.Dropped += pm.Dropped
	}
	for name, st := range b.checkers {
		cm := CheckerMetrics{
			Delivered:         st.delivered,
			Dropped:           drops[name],
			EmittedAggregates: st.emittedAggregates,
			EmittedDigests:    st.emittedDigests,
			Suppressed:        st.suppressed,
			OverflowDigests:   st.overflowDigests,
		}
		m.Checkers[name] = cm
		m.Delivered += cm.Delivered
		m.EmittedDigests += cm.EmittedDigests
	}
	// Checkers that only ever dropped (ring always full) still publish.
	for name, n := range drops {
		if _, ok := b.checkers[name]; !ok {
			m.Checkers[name] = CheckerMetrics{Dropped: n}
		}
	}
	return m
}
