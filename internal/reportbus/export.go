package reportbus

import (
	"encoding/json"
	"io"
	"sync"
)

// Exporter consumes each closed window's emitted aggregates. Batches
// arrive sorted by (checker, switch, args-hash); calls may come from
// the collector goroutine and inline publishers concurrently, so
// implementations must be safe for concurrent use.
type Exporter interface {
	ExportAggregates(aggs []Aggregate)
}

// JSONLExporter streams one JSON object per aggregate to a writer —
// the bus's durable sink. Lines are self-contained, so the stream can
// be tailed, cut, and replayed with standard tooling.
type JSONLExporter struct {
	mu  sync.Mutex
	w   io.Writer
	err error
	n   uint64
}

// NewJSONL builds a JSONL exporter over w.
func NewJSONL(w io.Writer) *JSONLExporter {
	return &JSONLExporter{w: w}
}

// ExportAggregates implements Exporter.
func (e *JSONLExporter) ExportAggregates(aggs []Aggregate) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	for i := range aggs {
		data, err := json.Marshal(&aggs[i])
		if err != nil {
			e.err = err
			return
		}
		if _, err := e.w.Write(append(data, '\n')); err != nil {
			e.err = err
			return
		}
		e.n++
	}
}

// Err returns the first write or marshal error; the exporter stops
// exporting after one (the bus never blocks on a broken sink).
func (e *JSONLExporter) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Lines returns how many aggregates were written.
func (e *JSONLExporter) Lines() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// CollectExporter keeps every emitted aggregate in memory — the
// consumer for tests and short experiment runs.
type CollectExporter struct {
	mu   sync.Mutex
	aggs []Aggregate
}

// ExportAggregates implements Exporter.
func (e *CollectExporter) ExportAggregates(aggs []Aggregate) {
	e.mu.Lock()
	e.aggs = append(e.aggs, aggs...)
	e.mu.Unlock()
}

// Aggregates returns a snapshot of everything collected so far.
func (e *CollectExporter) Aggregates() []Aggregate {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Aggregate(nil), e.aggs...)
}

// CountsByKey folds the collected aggregates into per-key digest
// totals — window- and deferral-independent, the deterministic view the
// conformance tests compare across shard counts.
func (e *CollectExporter) CountsByKey() map[Key]uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[Key]uint64, len(e.aggs))
	for i := range e.aggs {
		a := &e.aggs[i]
		out[Key{Checker: a.Checker, SwitchID: a.SwitchID, ArgsHash: a.ArgsHash}] += a.Count
	}
	return out
}
