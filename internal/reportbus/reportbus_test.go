package reportbus

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// manualClock is a test clock: a plain atomic nanosecond counter, safe
// for collector-goroutine reads.
type manualClock struct{ now atomic.Int64 }

func (c *manualClock) read() int64      { return c.now.Load() }
func (c *manualClock) set(t int64)      { c.now.Store(t) }
func (c *manualClock) fn() func() int64 { return c.read }

func rep(args ...uint64) pipeline.Report {
	vals := make([]pipeline.Value, len(args))
	for i, a := range args {
		vals[i] = pipeline.B(64, a)
	}
	return pipeline.Report{Args: vals}
}

func TestRingPushDrain(t *testing.T) {
	r := newRing(5) // rounds up to 8
	if got := len(r.buf); got != 8 {
		t.Fatalf("ring size = %d, want 8 (rounded up)", got)
	}
	for i := 0; i < 8; i++ {
		if !r.push(Digest{At: int64(i)}) {
			t.Fatalf("push %d rejected before full", i)
		}
	}
	if r.push(Digest{At: 99}) {
		t.Fatal("push accepted on a full ring")
	}
	if d := r.depth(); d != 8 {
		t.Fatalf("depth = %d, want 8", d)
	}
	out := r.drainInto(nil)
	if len(out) != 8 {
		t.Fatalf("drained %d, want 8", len(out))
	}
	for i, d := range out {
		if d.At != int64(i) {
			t.Fatalf("drain order broken: out[%d].At = %d", i, d.At)
		}
	}
	if d := r.depth(); d != 0 {
		t.Fatalf("depth after drain = %d, want 0", d)
	}
	// The ring is reusable after a full wrap.
	for i := 0; i < 12; i++ {
		if !r.push(Digest{At: int64(100 + i)}) {
			out = r.drainInto(out[:0])
			if !r.push(Digest{At: int64(100 + i)}) {
				t.Fatal("push rejected right after drain")
			}
		}
	}
}

func TestDigestFromTruncation(t *testing.T) {
	short := DigestFrom("c", 1, 7, rep(1, 2, 3))
	if short.NArgs != 3 || short.Truncated {
		t.Fatalf("short digest: NArgs=%d Truncated=%v", short.NArgs, short.Truncated)
	}
	if short.Args[0] != 1 || short.Args[2] != 3 {
		t.Fatalf("short digest args = %v", short.Args)
	}
	longA := DigestFrom("c", 1, 7, rep(1, 2, 3, 4, 5, 6, 7))
	longB := DigestFrom("c", 1, 7, rep(1, 2, 3, 4, 5, 6, 8))
	if longA.NArgs != MaxArgs || !longA.Truncated {
		t.Fatalf("long digest: NArgs=%d Truncated=%v", longA.NArgs, longA.Truncated)
	}
	// The stored args are identical, but the hash covers the truncated
	// tail, so the two digests must aggregate separately.
	if longA.Args != longB.Args {
		t.Fatalf("stored args differ: %v vs %v", longA.Args, longB.Args)
	}
	if longA.ArgsHash == longB.ArgsHash {
		t.Fatal("hash ignores truncated tail words")
	}
	same := DigestFrom("c", 1, 9, rep(1, 2, 3))
	if same.ArgsHash != short.ArgsHash {
		t.Fatal("hash not stable for identical args")
	}
}

func TestInlineAggregationWindows(t *testing.T) {
	clk := &manualClock{}
	sink := &CollectExporter{}
	b := New(Config{Window: 100, Clock: clk.fn(), Exporters: []Exporter{sink}})
	p := b.InlineProducer("sim")

	// Three digests for key A and one for key B inside the first window.
	for i := 0; i < 3; i++ {
		p.Publish(DigestFrom("loop", 1, int64(10+i), rep(0xA)))
	}
	p.Publish(DigestFrom("loop", 1, 20, rep(0xB)))
	if got := sink.Aggregates(); len(got) != 0 {
		t.Fatalf("window emitted early: %d aggregates", len(got))
	}
	// A digest past the window boundary closes it; the closer itself is
	// folded first, so it rides along in the emitted batch.
	p.Publish(DigestFrom("loop", 2, 150, rep(0xA)))

	aggs := sink.Aggregates()
	if len(aggs) != 3 {
		t.Fatalf("emitted %d aggregates, want 3", len(aggs))
	}
	byKey := map[Key]Aggregate{}
	for _, a := range aggs {
		byKey[Key{Checker: a.Checker, SwitchID: a.SwitchID, ArgsHash: a.ArgsHash}] = a
	}
	keyA := Key{Checker: "loop", SwitchID: 1, ArgsHash: DigestFrom("loop", 1, 0, rep(0xA)).ArgsHash}
	a := byKey[keyA]
	if a.Count != 3 || a.FirstAt != 10 || a.LastAt != 12 {
		t.Fatalf("key A aggregate = %+v, want count 3 span [10,12]", a)
	}
	if a.Args[0] != 0xA {
		t.Fatalf("key A args = %v", a.Args)
	}

	m := b.Metrics()
	if m.Published != 5 || m.Delivered != 5 || m.Dropped != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Unaccounted() != 0 {
		t.Fatalf("unaccounted = %d", m.Unaccounted())
	}
	b.Close()
	if m := b.Metrics(); m.EmittedDigests != 5 || m.LiveDigests != 0 || m.Unaccounted() != 0 {
		t.Fatalf("post-close metrics = %+v", m)
	}
}

func TestStormControlDefersWithoutLoss(t *testing.T) {
	clk := &manualClock{}
	sink := &CollectExporter{}
	// Burst 1, effectively no refill: each non-forced window close may
	// emit one aggregate per checker; the rest carry forward.
	b := New(Config{Window: 100, Clock: clk.fn(), Rate: 1e-9, Burst: 1, Exporters: []Exporter{sink}})
	p := b.InlineProducer("sim")

	p.Publish(DigestFrom("storm", 1, 1, rep(0xA)))
	p.Publish(DigestFrom("storm", 1, 2, rep(0xB)))
	p.Publish(DigestFrom("storm", 1, 3, rep(0xC)))
	clk.set(150)
	b.sweep(false) // non-forced close: token budget applies

	first := sink.Aggregates()
	if len(first) != 1 {
		t.Fatalf("storm window emitted %d aggregates, want 1", len(first))
	}
	m := b.Metrics()
	if st := m.Checkers["storm"]; st.Suppressed != 2 {
		t.Fatalf("suppressed = %d, want 2", st.Suppressed)
	}
	if m.LiveDigests != 2 || m.Unaccounted() != 0 {
		t.Fatalf("deferral lost digests: %+v", m)
	}

	// New digests for a deferred key merge into the carried aggregate.
	deferredKey := Key{Checker: "storm", SwitchID: 1}
	p.Publish(DigestFrom("storm", 1, 160, rep(0xB)))
	b.Close() // force-flushes the carryover

	counts := sink.CountsByKey()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("total emitted digests = %d, want 4", total)
	}
	var sawDeferred bool
	for _, a := range sink.Aggregates() {
		if a.Deferred > 0 {
			sawDeferred = true
			if a.Checker != deferredKey.Checker {
				t.Fatalf("deferred aggregate from %q", a.Checker)
			}
		}
	}
	if !sawDeferred {
		t.Fatal("no aggregate carries a Deferred count")
	}
	if m := b.Metrics(); m.Unaccounted() != 0 {
		t.Fatalf("post-close unaccounted = %d", m.Unaccounted())
	}
}

func TestMaxKeysOverflowBuckets(t *testing.T) {
	clk := &manualClock{}
	sink := &CollectExporter{}
	b := New(Config{Window: 1000, Clock: clk.fn(), MaxKeys: 2, Exporters: []Exporter{sink}})
	p := b.InlineProducer("sim")

	// Keys A and B claim the two live slots; C, D, E (same checker and
	// switch) fold into one overflow bucket with exact counts.
	for i, arg := range []uint64{0xA, 0xB, 0xC, 0xD, 0xE, 0xC} {
		p.Publish(DigestFrom("ovf", 1, int64(i), rep(arg)))
	}
	m := b.Metrics()
	if m.LiveAggregates != 3 { // 2 live keys + 1 overflow bucket
		t.Fatalf("live aggregates = %d, want 3", m.LiveAggregates)
	}
	if st := m.Checkers["ovf"]; st.OverflowDigests != 4 {
		t.Fatalf("overflow digests = %d, want 4", st.OverflowDigests)
	}
	b.Close()

	var ovfAgg *Aggregate
	for _, a := range sink.Aggregates() {
		if a.Overflow {
			if ovfAgg != nil {
				t.Fatal("more than one overflow bucket for one (checker, switch)")
			}
			c := a
			ovfAgg = &c
		}
	}
	if ovfAgg == nil {
		t.Fatal("no overflow aggregate emitted")
	}
	if ovfAgg.Count != 4 || len(ovfAgg.Args) != 0 {
		t.Fatalf("overflow aggregate = %+v, want count 4 and no args", ovfAgg)
	}
	if ovfAgg.FirstAt != 2 || ovfAgg.LastAt != 5 {
		t.Fatalf("overflow span = [%d,%d], want [2,5]", ovfAgg.FirstAt, ovfAgg.LastAt)
	}
	if m := b.Metrics(); m.EmittedDigests != 6 || m.Unaccounted() != 0 {
		t.Fatalf("post-close metrics = %+v", m)
	}
}

func TestRingDropAccounting(t *testing.T) {
	clk := &manualClock{}
	b := New(Config{Window: 100, Clock: clk.fn(), RingSize: 4})
	p := b.RingProducer("shard:0")

	accepted := 0
	for i := 0; i < 10; i++ {
		if p.Publish(DigestFrom("noisy", 1, int64(i), rep(uint64(i)))) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d, want 4 (ring capacity)", accepted)
	}
	m := b.Metrics()
	if m.Published != 10 || m.Dropped != 6 {
		t.Fatalf("published=%d dropped=%d, want 10/6", m.Published, m.Dropped)
	}
	if st := m.Checkers["noisy"]; st.Dropped != 6 {
		t.Fatalf("per-checker dropped = %d, want 6", st.Dropped)
	}
	b.Close()
	m = b.Metrics()
	if m.EmittedDigests != 4 || m.Unaccounted() != 0 {
		t.Fatalf("post-close metrics: emitted=%d unaccounted=%d", m.EmittedDigests, m.Unaccounted())
	}
	if d := m.Producers[0].QueueDepth; d != 0 {
		t.Fatalf("queue depth after close = %d", d)
	}
}

func TestInlineTapRunsBeforePublishReturns(t *testing.T) {
	clk := &manualClock{}
	b := New(Config{Window: 1000, Clock: clk.fn()})
	var tapped []Digest
	b.Tap(func(d Digest) { tapped = append(tapped, d) })
	p := b.InlineProducer("sim")
	d := DigestFrom("c", 3, 42, rep(7, 8))
	p.Publish(d)
	if len(tapped) != 1 || tapped[0] != d {
		t.Fatalf("tap saw %v, want exactly [%v]", tapped, d)
	}
}

func TestJSONLExporterRoundTrip(t *testing.T) {
	clk := &manualClock{}
	var buf bytes.Buffer
	jl := NewJSONL(&buf)
	b := New(Config{Window: 100, Clock: clk.fn(), Exporters: []Exporter{jl}})
	p := b.InlineProducer("sim")
	p.Publish(DigestFrom("a", 1, 5, rep(1, 2)))
	p.Publish(DigestFrom("a", 1, 6, rep(1, 2)))
	p.Publish(DigestFrom("b", 2, 7, rep(3)))
	b.Close()

	if err := jl.Err(); err != nil {
		t.Fatal(err)
	}
	if jl.Lines() != 2 {
		t.Fatalf("lines = %d, want 2", jl.Lines())
	}
	var total uint64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var a Aggregate
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		total += a.Count
	}
	if total != 3 {
		t.Fatalf("JSONL digest total = %d, want 3", total)
	}
}

// TestConcurrentProducersExactAccounting is the race-detector stress
// test: many ring producers against a live collector goroutine, with a
// concurrent metrics poller, must conserve every digest — published
// equals dropped plus emitted, exactly.
func TestConcurrentProducersExactAccounting(t *testing.T) {
	const (
		producers = 4
		perProd   = 20_000
	)
	sink := &CollectExporter{}
	b := New(Config{
		Window:    500 * time.Microsecond,
		RingSize:  256, // small enough to force real drops under load
		Exporters: []Exporter{sink},
	})
	b.Start()

	var wg sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		p := b.RingProducer("shard")
		wg.Add(1)
		go func(pi int, p *Producer) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				p.Publish(DigestFrom("stress", uint32(pi), int64(i), rep(uint64(i%17))))
			}
		}(pi, p)
	}
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for i := 0; i < 100; i++ {
			m := b.Metrics()
			if m.Unaccounted() < 0 {
				t.Errorf("mid-run unaccounted went negative: %d", m.Unaccounted())
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	wg.Wait()
	<-pollDone
	b.Close()

	m := b.Metrics()
	if m.Published != producers*perProd {
		t.Fatalf("published = %d, want %d", m.Published, producers*perProd)
	}
	if m.Unaccounted() != 0 || m.LiveDigests != 0 {
		t.Fatalf("post-close accounting: unaccounted=%d live=%d (dropped=%d emitted=%d)",
			m.Unaccounted(), m.LiveDigests, m.Dropped, m.EmittedDigests)
	}
	var exported uint64
	for _, c := range sink.CountsByKey() {
		exported += c
	}
	if exported != m.EmittedDigests {
		t.Fatalf("exporter saw %d digests, metrics say %d", exported, m.EmittedDigests)
	}
}

// TestCloseIsIdempotentAndFlushKeepsBusUsable covers the lifecycle
// edges: Flush mid-run, publish after Flush, double Close.
func TestCloseIsIdempotentAndFlushKeepsBusUsable(t *testing.T) {
	clk := &manualClock{}
	sink := &CollectExporter{}
	b := New(Config{Window: 100, Clock: clk.fn(), Exporters: []Exporter{sink}})
	p := b.InlineProducer("sim")
	p.Publish(DigestFrom("c", 1, 1, rep(1)))
	b.Flush()
	if n := len(sink.Aggregates()); n != 1 {
		t.Fatalf("flush emitted %d aggregates, want 1", n)
	}
	p.Publish(DigestFrom("c", 1, 2, rep(1)))
	b.Close()
	b.Close()
	counts := sink.CountsByKey()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 2 {
		t.Fatalf("digest total = %d, want 2", total)
	}
	if m := b.Metrics(); m.Unaccounted() != 0 {
		t.Fatalf("unaccounted = %d", m.Unaccounted())
	}
}
