package reportbus

import "sync/atomic"

// ring is a bounded single-producer single-consumer digest queue. The
// producer owns tail, the consumer owns head; both are atomics so the
// opposite side can read them, and Go's sequentially consistent atomics
// make the slot write visible before the tail publish. A full ring
// rejects the push — the producer accounts the drop and moves on; the
// hot path never blocks on the collector.
type ring struct {
	buf  []Digest
	mask uint64
	// head/tail are free-running indices (masked on access), padded
	// apart so producer and consumer don't false-share a cache line.
	head atomic.Uint64
	_    [7]uint64
	tail atomic.Uint64
	_    [7]uint64
}

func newRing(size int) *ring {
	n := 1
	for n < size {
		n <<= 1
	}
	return &ring{buf: make([]Digest, n), mask: uint64(n - 1)}
}

// push appends d; false means the ring is full and d was not enqueued.
func (r *ring) push(d Digest) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = d
	r.tail.Store(t + 1)
	return true
}

// drainInto appends every queued digest to out (consumer side only).
func (r *ring) drainInto(out []Digest) []Digest {
	h, t := r.head.Load(), r.tail.Load()
	for ; h != t; h++ {
		out = append(out, r.buf[h&r.mask])
	}
	r.head.Store(h)
	return out
}

// depth is a racy snapshot of the queued digest count, for metrics.
func (r *ring) depth() int {
	return int(r.tail.Load() - r.head.Load())
}
