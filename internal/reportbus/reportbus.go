// Package reportbus is the violation-digest pipeline between the data
// plane and its consumers: the software analogue of the Tofino digest
// channel the paper's checkers raise reports through (§2's "report"
// action). On hardware the channel is scarce and rate-limited; a
// checker that fires on every packet becomes a report storm that can
// swamp the collector long before it swamps forwarding. The bus makes
// that failure mode survivable by construction:
//
//   - Sharded ingest: each producer (engine shard, netsim switch, or
//     any single-threaded source) publishes fixed-size Digest values
//     into its own bounded SPSC ring — no shared lock, no allocation on
//     the hot path, and explicit drop accounting when a ring is full.
//     Single-threaded embedders (the netsim event loop, the control
//     plane) can use inline producers that deliver under the bus mutex
//     instead, trading the ring for synchronous delivery.
//   - Windowed aggregation: a collector drains the rings and coalesces
//     digests keyed by (checker, switch, args-hash) into counted
//     aggregates with first/last timestamps, so a million identical
//     violations become one record with count=1e6. The clock is
//     pluggable: wall time for live engines, netsim virtual time for
//     simulations.
//   - Storm control: per-checker token buckets bound the aggregate
//     emission rate, mirroring the digest-channel budget. A rate-limited
//     aggregate is never dropped — it is carried into the next window
//     (counts merged, Deferred incremented) and eventually emitted, so
//     emitted counts plus ring drops always sum to exactly the number
//     of digests raised.
//   - Bounded memory: the live aggregate table is capped; beyond the
//     cap, new keys fold into one per-(checker, switch) overflow bucket
//     that keeps counts (but not args), so collector memory is bounded
//     by configuration, not by traffic.
//
// Consumers attach per-window Exporters (JSONL, in-memory collection)
// and an optional per-digest tap (OnDigest) that sees every digest
// before aggregation — the control plane's reactive OnReport path.
package reportbus

import (
	"hash/maphash"
	"time"

	"repro/internal/pipeline"
)

// MaxArgs is the number of digest argument words carried inline. A
// Digest is a fixed-size value so ring slots and aggregation never
// allocate; reports with more arguments keep the first MaxArgs words
// (the aggregation hash still covers all of them, so truncated digests
// with different tails aggregate separately).
const MaxArgs = 6

// Digest is one violation report in bus form: fixed-size, value-typed
// provenance plus arguments. Checker strings are shared references to
// the deployment's checker names, so copying a Digest never allocates.
type Digest struct {
	Checker  string
	SwitchID uint32
	// At is the raise timestamp in the bus clock's nanoseconds (wall or
	// netsim virtual time, per Config.Clock).
	At int64
	// NArgs is the argument count (capped at MaxArgs; Truncated marks
	// digests that lost tail words).
	NArgs     uint8
	Truncated bool
	Args      [MaxArgs]uint64
	// ArgsHash covers every original argument word, including words
	// beyond MaxArgs.
	ArgsHash uint64
}

// argsSeed makes the digest hash stable within a process but not a
// wire-format promise.
var argsSeed = maphash.MakeSeed()

// DigestFrom converts a raised pipeline report into a Digest.
func DigestFrom(checker string, switchID uint32, at int64, rep pipeline.Report) Digest {
	d := Digest{Checker: checker, SwitchID: switchID, At: at}
	if len(rep.Args) <= MaxArgs {
		// Hot path: hash from a stack buffer in one call, no Hash state.
		var buf [8 * MaxArgs]byte
		for i, a := range rep.Args {
			d.Args[i] = a.V
			d.NArgs++
			for b := 0; b < 8; b++ {
				buf[8*i+b] = byte(a.V >> (8 * b))
			}
		}
		d.ArgsHash = maphash.Bytes(argsSeed, buf[:8*len(rep.Args)])
		return d
	}
	var h maphash.Hash
	h.SetSeed(argsSeed)
	for i, a := range rep.Args {
		if i < MaxArgs {
			d.Args[i] = a.V
			d.NArgs++
		} else {
			d.Truncated = true
		}
		var w [8]byte
		for b := 0; b < 8; b++ {
			w[b] = byte(a.V >> (8 * b))
		}
		h.Write(w[:])
	}
	d.ArgsHash = h.Sum64()
	return d
}

// Key identifies one aggregate: same checker, same switch, same
// argument values (by hash).
type Key struct {
	Checker  string
	SwitchID uint32
	ArgsHash uint64
}

// Aggregate is one coalesced violation record: Count digests with
// identical keys, bracketed by first/last raise timestamps.
type Aggregate struct {
	Checker  string   `json:"checker"`
	SwitchID uint32   `json:"switch_id"`
	ArgsHash uint64   `json:"args_hash"`
	Args     []uint64 `json:"args,omitempty"`
	Count    uint64   `json:"count"`
	FirstAt  int64    `json:"first_at"`
	LastAt   int64    `json:"last_at"`
	// Deferred counts the windows storm control held this aggregate
	// back before it was emitted (0 = emitted in its own window).
	Deferred uint32 `json:"deferred,omitempty"`
	// Overflow marks a per-(checker, switch) bucket that absorbed
	// digests after the live-key budget was exhausted; it carries exact
	// counts but no argument values.
	Overflow bool `json:"overflow,omitempty"`
}

// Config sizes and parameterizes a Bus. The zero value is usable: wall
// clock, 10ms windows, 4096-slot rings, no storm budget, 4096 live keys.
type Config struct {
	// Window is the aggregation window in bus-clock nanoseconds
	// (time.Duration for wall clocks, netsim.Time cast for virtual).
	// Default 10ms.
	Window time.Duration
	// Clock supplies timestamps and window boundaries; default wall
	// clock. With an inline-only bus this may read single-threaded state
	// (e.g. netsim.Simulator.Now); with ring producers and Start it must
	// be safe to call from the collector goroutine.
	Clock func() int64
	// RingSize is the per-producer ring capacity, rounded up to a power
	// of two. Default 4096.
	RingSize int
	// Rate is the per-checker storm budget in aggregate emissions per
	// bus-clock second; 0 means unlimited (no storm control).
	Rate float64
	// Burst is the token-bucket depth; default 8.
	Burst int
	// MaxKeys caps the live aggregate table (current window plus
	// storm-deferred carryover). Beyond it, new keys fold into overflow
	// buckets. Default 4096.
	MaxKeys int
	// OnDigest, when set, observes every delivered digest before
	// aggregation — the reactive control-plane tap. It runs outside the
	// bus mutex, on the publisher goroutine (inline producers) or the
	// collector goroutine (ring producers).
	OnDigest func(Digest)
	// Exporters receive each closed window's emitted aggregates, sorted
	// by (checker, switch, args-hash). Called outside the bus mutex.
	Exporters []Exporter
	// PollEvery is the collector goroutine's ring sweep interval
	// (Start); default Window/4.
	PollEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = func() int64 { return time.Now().UnixNano() }
	}
	if c.RingSize <= 0 {
		c.RingSize = 4096
	}
	if c.Burst <= 0 {
		c.Burst = 8
	}
	if c.MaxKeys <= 0 {
		c.MaxKeys = 4096
	}
	if c.PollEvery <= 0 {
		c.PollEvery = c.Window / 4
	}
	return c
}
