// Data center load balancing (§2, Figure 2): the checker verifies that
// the fabric's ECMP actually balances the two uplinks of a leaf within a
// byte threshold. We first run well-hashed traffic (no report), then
// simulate an ECMP hashing fault by pinning every flow to one uplink and
// watch the imbalance reports fire.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/dataplane"
	"repro/internal/netsim"
	"repro/internal/pipeline"
)

// pinnedECMP is a broken router that sends every cross-leaf flow out of
// port 1 — the hashing fault the checker should expose.
type pinnedECMP struct{ inner *netsim.L3Program }

func (p pinnedECMP) Process(sw *netsim.Switch, pkt *dataplane.Decoded, meta *netsim.PacketMeta) []netsim.Egress {
	out := p.inner.Process(sw, pkt, meta)
	if len(out) == 1 && (out[0].Port == 1 || out[0].Port == 2) {
		out[0].Port = 1 // all eggs in one basket
	}
	return out
}

func main() {
	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true,
	})

	info := checkers.MustParse("load-balance")
	compiled := compiler.MustCompile(info, compiler.Options{Name: "load-balance"})
	rt := &compiler.Runtime{Prog: compiled}

	var reports int
	for _, sw := range ls.AllSwitches() {
		att := sw.AttachChecker(rt, func(sw *netsim.Switch, _ pipeline.Report) {
			reports++
		})
		scalar := func(name string, w int, v uint64) {
			if err := att.State.Tables[name].Insert(pipeline.Entry{
				Action: []pipeline.Value{pipeline.B(w, v)},
			}); err != nil {
				log.Fatal(err)
			}
		}
		scalar("left_port", 8, 1)
		scalar("right_port", 8, 2)
		scalar("thresh", 32, 8000) // bytes of allowed skew
	}
	// Uplink ports are a leaf concept: only the leaves' spine-facing
	// ports 1 and 2 count toward the balance sensors. (A spine pushes
	// all of a destination's traffic through one port by design.)
	for _, leaf := range ls.Leaves {
		for _, port := range []uint64{1, 2} {
			if err := leaf.Checker().State.Tables["is_uplink"].Insert(pipeline.Entry{
				Keys:   []pipeline.KeyMatch{pipeline.ExactKey(port)},
				Action: []pipeline.Value{pipeline.BoolV(true)},
			}); err != nil {
				log.Fatal(err)
			}
		}
	}

	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)

	// Pick source ports whose flows alternate between the two uplinks,
	// so healthy ECMP keeps the running skew under one packet.
	var viaLeft, viaRight []uint16
	for p := uint16(20000); len(viaLeft) < 40 || len(viaRight) < 40; p++ {
		probe := &dataplane.Decoded{
			HasIPv4: true,
			IPv4:    dataplane.IPv4{Src: h1.IP, Dst: h2.IP, Protocol: dataplane.ProtoUDP},
			HasUDP:  true,
			UDP:     dataplane.UDP{SrcPort: p, DstPort: 80},
		}
		if netsim.FlowHash(probe)%2 == 0 {
			viaLeft = append(viaLeft, p)
		} else {
			viaRight = append(viaRight, p)
		}
	}
	blast := func(n int) {
		for i := 0; i < n; i++ {
			h1.SendUDP(h2.IP, viaLeft[i%len(viaLeft)], 80, 1000)
			h1.SendUDP(h2.IP, viaRight[i%len(viaRight)], 80, 1000)
			sim.RunAll() // drain so the sensors see strict alternation
		}
	}

	blast(40)
	fmt.Printf("healthy ECMP: spine1=%d spine2=%d frames, imbalance reports=%d\n",
		ls.Spines[0].RxFrames, ls.Spines[1].RxFrames, reports)

	// Break the hashing.
	ls.Leaves[0].Forwarding = pinnedECMP{inner: ls.Leaves[0].Forwarding.(*netsim.L3Program)}
	before := reports
	blast(40)
	fmt.Printf("pinned ECMP:  spine1=%d spine2=%d frames, new imbalance reports=%d\n",
		ls.Spines[0].RxFrames, ls.Spines[1].RxFrames, reports-before)

	if reports > before {
		fmt.Println("\nthe checker's per-switch byte sensors crossed the threshold and reported —")
		fmt.Println("no polling, no collector: the imbalance was flagged by the packets themselves.")
	}
}
