// Aether application filtering (§5.2): build the Figure 10 deployment,
// replay the Figure 11 table-management bug, and show the Hydra checker
// (compiled from the Figure 9 Indus program) catching the silently
// dropped traffic that every static technique would miss — the
// forwarding rules are all "correct", they just encode stale intent.
//
//	go run ./examples/aether-filtering
package main

import (
	"fmt"
	"log"

	"repro/internal/aether"
	"repro/internal/dataplane"
	"repro/internal/netsim"
)

func main() {
	sim := netsim.NewSimulator()
	d := aether.Build(sim, aether.Options{WithChecker: true})

	// Slice "camera": deny everything except the video-analytics app on
	// UDP port 81.
	d.Core.DefineSlice(&aether.Slice{ID: 1, Rules: []aether.FilterRule{
		{Priority: 10, Allow: false},
		{Priority: 20, Proto: dataplane.ProtoUDP, PortLo: 81, PortHi: 81, Allow: true},
	}})

	c1, err := d.Core.Attach("imsi-8901", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("camera 1 attaches: %s (uplink TEID %d)\n", c1.IP, c1.TEIDUp)

	send := func(label string, ue *aether.UE, port uint16) {
		before := d.Server.RxUDP
		d.SendUplink(ue, aether.ServerAddr, dataplane.ProtoUDP, port, 400)
		sim.RunAll()
		verdict := "DELIVERED"
		if d.Server.RxUDP == before {
			verdict = "DROPPED"
		}
		fmt.Printf("  %-34s -> %s (hydra reports so far: %d)\n", label, verdict, len(d.HydraApp.Reports))
	}

	send("camera 1 -> analytics:81/udp", c1, 81)
	send("camera 1 -> analytics:80/udp (denied)", c1, 80)

	fmt.Println("\noperator updates the portal: allow udp 81-82, priority 25")
	if err := d.UpdatePortal(1, []aether.FilterRule{
		{Priority: 10, Allow: false},
		{Priority: 25, Proto: dataplane.ProtoUDP, PortLo: 81, PortHi: 82, Allow: true},
	}); err != nil {
		log.Fatal(err)
	}

	c2, err := d.Core.Attach("imsi-8902", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("camera 2 attaches: %s — ONOS installs the new shared Applications entry\n", c2.IP)
	fmt.Printf("UPF tables now: %s\n\n", d.UPF)

	send("camera 2 -> analytics:81/udp", c2, 81)
	send("camera 2 -> analytics:82/udp", c2, 82)
	send("camera 1 -> analytics:81/udp (the bug)", c1, 81)

	if n := len(d.HydraApp.Reports); n > 0 {
		rep := d.HydraApp.Reports[n-1]
		fmt.Printf("\nHydra report from switch %d:\n", rep.Switch)
		fmt.Printf("  ue=%s proto=%d app=%s port=%d — operator intent says ALLOW, data plane DROPPED\n",
			rep.UEAddr, rep.Proto, rep.AppAddr, rep.L4Port)
		fmt.Println("\nThe Figure 11 bug: camera 1's port-81 traffic now classifies into the new")
		fmt.Println("higher-priority app ID, for which camera 1 has no Terminations entry.")
		fmt.Println("Hydra caught it on the very first dropped packet, in the data plane.")
	} else {
		fmt.Println("\nno report raised — unexpected")
	}
}
