// Quickstart: write an Indus property, compile it, link it to a
// simulated leaf-spine fabric, and watch Hydra reject a violating
// packet in real time.
//
// The property is Figure 7's valley-free rule: a packet may visit a
// spine switch at most once.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
	"repro/internal/netsim"
	"repro/internal/p4"
	"repro/internal/pipeline"
	"repro/internal/srcrouting"
)

func main() {
	// 1. An Indus program: declarations plus the three blocks (init,
	//    telemetry, checker) of §2. This one is Figure 7 verbatim.
	src := checkers.ValleyFreeSrc

	prog, err := parser.Parse("valley-free.indus", src)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		log.Fatalf("typecheck: %v", err)
	}

	// 2. Compile it. The same IR both executes in the simulator and
	//    pretty-prints as P4 (what you would load on a Tofino).
	compiled, err := compiler.Compile(info, compiler.Options{Name: "valley-free"})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Printf("compiled %q: %d telemetry bits on the wire, %d generated P4 lines\n\n",
		compiled.Name, compiled.TeleWireBits(), p4.LineCount(p4.Emit(compiled)))

	// 3. Build the Figure 8 network (source routing on 2 leaves + 2
	//    spines) and link the checker to every switch.
	sim := netsim.NewSimulator()
	net := srcrouting.Build(sim)
	rt := &compiler.Runtime{Prog: compiled}
	for _, sw := range net.Switches() {
		att := sw.AttachChecker(rt, nil)
		// The control plane tells each switch whether it is a spine.
		isSpine := uint64(0)
		if net.IsSpine(sw) {
			isSpine = 1
		}
		if err := att.State.Tables["is_spine_switch"].Insert(pipeline.Entry{
			Action: []pipeline.Value{pipeline.B(1, isSpine)},
		}); err != nil {
			log.Fatal(err)
		}
	}

	// 4. A legal packet: h1 -> s1 -> s3 -> s2 -> h3 (one spine).
	route, err := net.Route([]*netsim.Switch{net.S1, net.S3, net.S2}, net.H3)
	if err != nil {
		log.Fatal(err)
	}
	net.H1.SendSourceRouted(net.H3.IP, route, 64)

	// 5. An illegal packet from the §5.1 buggy sender: it rides down to
	//    the other leaf and back up through the second spine — a valley.
	bad, err := net.BuggySender(net.H1, net.H3)
	if err != nil {
		log.Fatal(err)
	}
	net.H1.SendSourceRouted(net.H3.IP, bad, 64)

	sim.RunAll()

	fmt.Printf("legal packet delivered to h3: %v\n", net.H3.RxUDP == 1)
	fmt.Printf("valley packet rejected at the edge (s2): %v\n", net.S2.Checker().Rejected == 1)
	fmt.Println("\nEvery packet was checked in the data plane, at line rate — no central verifier.")
}
