// Valley-free source routing (§5.1 in full): enumerate every legal
// valley-free path and every errant path the buggy sender can emit on
// the Figure 8 topology, send a packet down each, and tally what Hydra
// allows and drops.
//
//	go run ./examples/valleyfree
package main

import (
	"fmt"
	"log"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/srcrouting"
)

func main() {
	sim := netsim.NewSimulator()
	net := srcrouting.Build(sim)

	info := checkers.MustParse("valley-free")
	compiled := compiler.MustCompile(info, compiler.Options{Name: "valley-free"})
	rt := &compiler.Runtime{Prog: compiled}
	for _, sw := range net.Switches() {
		att := sw.AttachChecker(rt, nil)
		spine := uint64(0)
		if net.IsSpine(sw) {
			spine = 1
		}
		if err := att.State.Tables["is_spine_switch"].Insert(pipeline.Entry{
			Action: []pipeline.Value{pipeline.B(1, spine)},
		}); err != nil {
			log.Fatal(err)
		}
	}

	pathName := func(path []*netsim.Switch) string {
		s := ""
		for i, sw := range path {
			if i > 0 {
				s += "->"
			}
			s += sw.Name
		}
		return s
	}

	legal, errant := 0, 0
	fmt.Println("legal (valley-free) paths:")
	for _, src := range net.Hosts() {
		for _, dst := range net.Hosts() {
			if src == dst {
				continue
			}
			for _, path := range net.ValleyFreePaths(src, dst) {
				route, err := net.Route(path, dst)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %s -> %s via %s\n", src.Name, dst.Name, pathName(path))
				src.SendSourceRouted(dst.IP, route, 64)
				legal++
			}
		}
	}
	fmt.Println("errant (valley) paths from the buggy sender:")
	for _, src := range net.Hosts() {
		for _, dst := range net.Hosts() {
			if src == dst || net.Leaf(src) == net.Leaf(dst) {
				continue
			}
			for _, path := range net.ValleyPaths(src, dst) {
				route, err := net.Route(path, dst)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %s -> %s via %s (two spines!)\n", src.Name, dst.Name, pathName(path))
				src.SendSourceRouted(dst.IP, route, 64)
				errant++
			}
		}
	}

	sim.RunAll()

	var delivered, rejected uint64
	for _, h := range net.Hosts() {
		delivered += h.RxUDP
	}
	for _, sw := range net.Switches() {
		rejected += sw.Checker().Rejected
	}
	fmt.Printf("\nsent %d legal + %d errant packets\n", legal, errant)
	fmt.Printf("delivered: %d/%d legal\n", delivered, legal)
	fmt.Printf("rejected by Hydra: %d/%d errant\n", rejected, errant)
}
