// Bare-metal multi-tenancy (§2, Figure 1): two tenants share a
// leaf-spine fabric; the Figure 1 Indus program guarantees that no
// packet ever crosses between them, whatever the forwarding state says.
// We then inject a "fat-fingered" route that would leak tenant A's
// traffic to tenant B's server, and watch the checker stop every leaked
// packet at the edge.
//
//	go run ./examples/multitenancy
package main

import (
	"fmt"
	"log"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/netsim"
	"repro/internal/pipeline"
)

func main() {
	sim := netsim.NewSimulator()
	// 2 leaves x 2 spines, 2 hosts per leaf: host 0 of each leaf belongs
	// to tenant A (10), host 1 to tenant B (20).
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2, WithRouting: true,
	})

	info := checkers.MustParse("multi-tenancy")
	compiled := compiler.MustCompile(info, compiler.Options{Name: "multi-tenancy"})
	rt := &compiler.Runtime{Prog: compiled}

	// Control plane: ports 3 (host 0) are tenant A; ports 4 (host 1)
	// are tenant B; fabric ports 1-2 have no tenant binding (value 0
	// never equals a real tenant, and only edge ports matter at the
	// first/last hop).
	for _, sw := range ls.AllSwitches() {
		att := sw.AttachChecker(rt, nil)
		install := func(port, tenant uint64) {
			if err := att.State.Tables["tenants"].Insert(pipeline.Entry{
				Keys:   []pipeline.KeyMatch{pipeline.ExactKey(port)},
				Action: []pipeline.Value{pipeline.B(8, tenant)},
			}); err != nil {
				log.Fatal(err)
			}
		}
		install(3, 10) // tenant A
		install(4, 20) // tenant B
	}

	tenantA1, tenantA2 := ls.Host(0, 0), ls.Host(1, 0)
	tenantB2 := ls.Host(1, 1)

	// Legal: tenant A talks to tenant A across the fabric.
	tenantA1.SendUDP(tenantA2.IP, 1000, 80, 200)
	sim.RunAll()
	fmt.Printf("A -> A across the fabric: delivered=%v\n", tenantA2.RxUDP == 1)

	// Fat-finger: someone rewrites leaf2's route for tenant A's prefix
	// toward tenant B's port. Forwarding will now happily deliver
	// A-traffic to B — a static checker that trusts this table would
	// call the network "consistent".
	badRoutes := &netsim.L3Program{}
	badRoutes.AddRoute(netsim.HostIP(1, 0), 32, 4) // A's address -> B's port!
	badRoutes.AddRoute(netsim.HostIP(1, 1), 32, 4)
	badRoutes.AddRoute(netsim.LeafPrefix(0), 24, 1, 2)
	ls.Leaves[1].Forwarding = badRoutes

	for i := 0; i < 5; i++ {
		tenantA1.SendUDP(tenantA2.IP, 2000+uint16(i), 80, 200)
	}
	sim.RunAll()

	fmt.Printf("after the bad route: tenant B received %d leaked packets (want 0)\n", tenantB2.RxUDP)
	fmt.Printf("checker rejected %d packets at leaf2's edge\n", ls.Leaves[1].Checker().Rejected)
	fmt.Println("\nisolation held: the packet entered at a tenant-A port and tried to exit")
	fmt.Println("at a tenant-B port, so the Figure 1 checker dropped it before the host saw it.")
}
