// Benchmarks regenerating the paper's evaluation artifacts (one per
// table/figure, §6) plus the ablations DESIGN.md calls out. Custom
// metrics carry the experiment outputs: tele_B (telemetry bytes on the
// wire), p4_loc (generated lines), phv_pct, rtt_*_ms, pps, and so on.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/experiments"
	"repro/internal/indus/eval"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
	"repro/internal/netsim"
	"repro/internal/p4"
	"repro/internal/pipeline"
	"repro/internal/resources"
	"repro/internal/stats"
)

// ---------------------------------------------------------------------------
// Table 1

// BenchmarkTable1Compile measures the Indus compiler over the full
// corpus (the paper's compiler is ~2500 lines of OCaml; ours must at
// least be fast).
func BenchmarkTable1Compile(b *testing.B) {
	infos := make([]*types.Info, 0, len(checkers.All))
	for _, p := range checkers.All {
		infos = append(infos, checkers.MustParse(p.Key))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, info := range infos {
			if _, err := compiler.Compile(info, compiler.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(infos)), "programs/op")
}

// BenchmarkTable1Resources regenerates the Tofino columns of Table 1
// and reports the corpus-wide PHV figure.
func BenchmarkTable1Resources(b *testing.B) {
	var rows []experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	var maxPHV float64
	for _, r := range rows {
		if r.PHVPct > maxPHV {
			maxPHV = r.PHVPct
		}
	}
	b.ReportMetric(maxPHV, "max_phv_pct")
	b.ReportMetric(float64(resources.BaselineStages), "stages")
}

// BenchmarkTable1P4Emission measures the P4 backend and reports the
// total generated line count.
func BenchmarkTable1P4Emission(b *testing.B) {
	progs := make([]*pipeline.Program, 0, len(checkers.All))
	for _, p := range checkers.All {
		progs = append(progs, compiler.MustCompile(checkers.MustParse(p.Key), compiler.Options{Name: p.Key}))
	}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, prog := range progs {
			total += p4.LineCount(p4.Emit(prog))
		}
	}
	b.ReportMetric(float64(total), "p4_loc")
}

// ---------------------------------------------------------------------------
// Figure 12

// BenchmarkFig12RTT runs a scaled-down Figure 12 experiment per
// iteration and reports the two mean RTTs plus the t-test p-value; the
// paper's result is p >> 0.05 (no significant difference).
func BenchmarkFig12RTT(b *testing.B) {
	var r experiments.Fig12Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunFig12(experiments.Fig12Config{
			Duration:      500 * netsim.Millisecond,
			PingInterval:  4 * netsim.Millisecond,
			BackgroundBps: 300_000_000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.Summarize(r.Baseline.RTT).Mean, "rtt_base_ms")
	b.ReportMetric(stats.Summarize(r.Checkers.RTT).Mean, "rtt_chk_ms")
	b.ReportMetric(r.TTest.P, "t_test_p")
}

// ---------------------------------------------------------------------------
// Throughput (§6.2 text result)

func benchThroughput(b *testing.B, withCheckers bool) {
	var res experiments.ThroughputResult
	for i := 0; i < b.N; i++ {
		var base, chk experiments.ThroughputResult
		var err error
		base, chk, err = experiments.RunThroughput(experiments.ThroughputConfig{Packets: 10_000, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		if withCheckers {
			res = chk
		} else {
			res = base
		}
	}
	b.ReportMetric(res.DeliveredRatio*100, "delivered_pct")
	b.ReportMetric(res.WallPktsPerSec, "sw_pps")
}

// BenchmarkThroughputBaseline replays the campus trace without Hydra.
func BenchmarkThroughputBaseline(b *testing.B) { benchThroughput(b, false) }

// BenchmarkThroughputAllCheckers replays it with all checkers linked.
func BenchmarkThroughputAllCheckers(b *testing.B) { benchThroughput(b, true) }

// ---------------------------------------------------------------------------
// Sharded checker engine

// benchEngineShards replays the campus trace through the flow-sharded
// engine with all corpus checkers attached. The engine is rebuilt per
// iteration so per-shard load sensors start cold each time; `pps` is
// the engine's packet-checking rate. Parallel speedup needs cores: on a
// multi-core machine shards scale the rate, under GOMAXPROCS=1 they
// tie.
func benchEngineShards(b *testing.B, shards int) {
	const packets = 10_000
	var res experiments.EngineReplayResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunEngineReplay(experiments.EngineReplayConfig{
			Packets: packets, Seed: 5, Shards: shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Counts.Forwarded != packets || res.Counts.Errors != 0 {
			b.Fatalf("replay outcome changed: %+v", res.Counts)
		}
	}
	b.ReportMetric(res.WallPktsPerSec, "pps")
}

func BenchmarkEngineShards1(b *testing.B) { benchEngineShards(b, 1) }
func BenchmarkEngineShards4(b *testing.B) { benchEngineShards(b, 4) }
func BenchmarkEngineShards8(b *testing.B) { benchEngineShards(b, 8) }

// BenchmarkNetsimReplay measures the end-to-end wire path: the campus
// trace through the event-driven fabric with all checkers attached —
// pooled parse, plan-based header binding, in-place telemetry rewrite,
// and single-pass serialization. `pps` is wall-clock end-to-end
// throughput; `fast_pct` is the share of switch transmissions that took
// the in-place rewrite fast path.
func BenchmarkNetsimReplay(b *testing.B) {
	const packets = 10_000
	var res experiments.WireReplayResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunWireReplay(experiments.WireReplayConfig{Packets: packets, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		if res.DeliveredRatio != 1 || res.Rejected != 0 || res.ParseErrors != 0 {
			b.Fatalf("replay outcome changed: delivered=%.2f rejected=%d errors=%d",
				res.DeliveredRatio, res.Rejected, res.ParseErrors)
		}
	}
	b.ReportMetric(res.WallPktsPerSec, "pps")
	b.ReportMetric(res.FastShare*100, "fast_pct")
}

// BenchmarkStormReplay measures the report-bus pipeline under a
// worst-case report storm: the campus trace with an always-violating
// probe raising a digest at every hop, aggregated and rate-limited by
// the bus. `storm_pps` is replay throughput with the storm active;
// `pps_ratio` is storm over baseline (probe disarmed) — the cost of the
// report path itself.
func BenchmarkStormReplay(b *testing.B) {
	var res experiments.StormResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunStorm(experiments.StormConfig{
			Packets: 10_000, Seed: 5, Repeats: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Storm.Unaccounted != 0 || res.Storm.ExportedDigests != res.Storm.Raised {
			b.Fatalf("storm accounting broke: raised=%d exported=%d unaccounted=%d",
				res.Storm.Raised, res.Storm.ExportedDigests, res.Storm.Unaccounted)
		}
	}
	b.ReportMetric(res.Storm.WallPktsPerSec, "storm_pps")
	b.ReportMetric(res.PPSRatio, "pps_ratio")
	b.ReportMetric(float64(res.Storm.MaxLiveAggregates), "max_live_aggs")
}

// ---------------------------------------------------------------------------
// Per-checker hot path

// BenchmarkCheckerPerPacket measures one telemetry-hop execution of
// each compiled corpus checker — the per-packet work a switch does.
func BenchmarkCheckerPerPacket(b *testing.B) {
	for _, p := range checkers.All {
		p := p
		b.Run(p.Key, func(b *testing.B) {
			prog := compiler.MustCompile(checkers.MustParse(p.Key), compiler.Options{Name: p.Key})
			rt := &compiler.Runtime{Prog: prog}
			st := prog.NewState()
			headers := map[string]pipeline.Value{}
			for _, path := range prog.HeaderBindings {
				headers[path] = pipeline.B(32, 1)
			}
			env := compiler.HopEnv{State: st, SwitchID: 7, Headers: headers, PacketLen: 256}
			var blob []byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hr, err := rt.RunHop(blob, env, i == 0, false)
				if err != nil {
					b.Fatal(err)
				}
				blob = hr.Blob
			}
			b.ReportMetric(float64((prog.TeleWireBits()+7)/8), "tele_B")
		})
	}
}

// BenchmarkPHVSlots is the linking ablation: one telemetry-hop
// execution of the loop-freedom checker on the map-PHV interpreter vs
// the slot-resolved linked executor (flat []Value PHV, closure ops,
// static-offset telemetry codec).
func BenchmarkPHVSlots(b *testing.B) {
	prog := compiler.MustCompile(checkers.MustParse("loop-freedom"), compiler.Options{})
	for _, mode := range []struct {
		name   string
		noLink bool
	}{{"map", true}, {"linked", false}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			rt := &compiler.Runtime{Prog: prog, NoLink: mode.noLink}
			st := prog.NewState()
			env := compiler.HopEnv{State: st, SwitchID: 7, PacketLen: 256, ReuseBlob: true}
			var blob []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hr, err := rt.RunHop(blob, env, i == 0, false)
				if err != nil {
					b.Fatal(err)
				}
				blob = hr.Blob
			}
		})
	}
}

// BenchmarkTableLookup measures the match-action table hot paths: the
// packed-key exact map, the wide-key (string fallback) exact map, and
// the pre-sorted TCAM scan with compiled per-entry matchers.
func BenchmarkTableLookup(b *testing.B) {
	b.Run("exact-packed", func(b *testing.B) {
		t := pipeline.NewTable("t", []pipeline.KeySpec{{Width: 32}, {Width: 16}},
			[]pipeline.FieldRef{"ctrl.v"}, []pipeline.Value{pipeline.B(16, 0)})
		for i := 0; i < 256; i++ {
			if err := t.Insert(pipeline.Entry{
				Keys:   []pipeline.KeyMatch{pipeline.ExactKey(uint64(i)), pipeline.ExactKey(uint64(i % 16))},
				Action: []pipeline.Value{pipeline.B(16, uint64(i))},
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, hit := t.LookupPacked(pipeline.PackedKey{uint64(i % 256), uint64(i % 16)}); !hit {
				b.Fatal("miss")
			}
		}
	})
	b.Run("exact-wide", func(b *testing.B) {
		keys := make([]pipeline.KeySpec, 6)
		for i := range keys {
			keys[i] = pipeline.KeySpec{Width: 16}
		}
		t := pipeline.NewTable("t", keys, []pipeline.FieldRef{"ctrl.v"}, []pipeline.Value{pipeline.B(16, 0)})
		for i := 0; i < 64; i++ {
			km := make([]pipeline.KeyMatch, 6)
			for j := range km {
				km[j] = pipeline.ExactKey(uint64(i + j))
			}
			if err := t.Insert(pipeline.Entry{Keys: km, Action: []pipeline.Value{pipeline.B(16, uint64(i))}}); err != nil {
				b.Fatal(err)
			}
		}
		vals := make([]uint64, 6)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range vals {
				vals[j] = uint64(i%64 + j)
			}
			if _, hit := t.Lookup(vals); !hit {
				b.Fatal("miss")
			}
		}
	})
	b.Run("tcam", func(b *testing.B) {
		t := pipeline.NewTable("t",
			[]pipeline.KeySpec{{Width: 32, Kind: pipeline.MatchTernary}, {Width: 16, Kind: pipeline.MatchRange}},
			[]pipeline.FieldRef{"ctrl.v"}, []pipeline.Value{pipeline.B(16, 0)})
		for i := 0; i < 64; i++ {
			if err := t.Insert(pipeline.Entry{
				Keys:     []pipeline.KeyMatch{pipeline.TernaryKey(uint64(i), 0xFF), pipeline.RangeKey(uint64(i*10), uint64(i*10+9))},
				Priority: i,
				Action:   []pipeline.Value{pipeline.B(16, uint64(i))},
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := uint64(i % 64)
			if _, hit := t.LookupPacked(pipeline.PackedKey{k, k*10 + 5}); !hit {
				b.Fatal("miss")
			}
		}
	})
}

// BenchmarkInterpreterVsPipeline compares the reference interpreter
// against the compiled pipeline on the same trace (a compiler speedup
// ablation: the differential tests prove they agree; this measures the
// gap).
func BenchmarkInterpreterVsPipeline(b *testing.B) {
	info := checkers.MustParse("loop-freedom")

	b.Run("interpreter", func(b *testing.B) {
		m := eval.New(info)
		sws := []*eval.SwitchState{eval.NewSwitchState(1), eval.NewSwitchState(2), eval.NewSwitchState(3)}
		hops := []eval.Hop{
			{Switch: sws[0], PacketLen: 100},
			{Switch: sws[1], PacketLen: 100},
			{Switch: sws[2], PacketLen: 100},
		}
		for i := 0; i < b.N; i++ {
			if _, err := m.RunTrace(hops); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipeline", func(b *testing.B) {
		prog := compiler.MustCompile(info, compiler.Options{})
		rt := &compiler.Runtime{Prog: prog}
		st := prog.NewState()
		envs := []compiler.HopEnv{
			{State: st, SwitchID: 1, PacketLen: 100},
			{State: st, SwitchID: 2, PacketLen: 100},
			{State: st, SwitchID: 3, PacketLen: 100},
		}
		for i := 0; i < b.N; i++ {
			if _, err := rt.RunTrace(envs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Ablation 1 (§4.3): last-hop vs per-hop checking

// BenchmarkAblationCheckPlacement compares the two linking modes on the
// loop checker: per-hop checking runs the checker block at every switch
// (more work per hop, violations caught mid-network), last-hop checking
// only at the edge.
func BenchmarkAblationCheckPlacement(b *testing.B) {
	info := checkers.MustParse("loop-freedom")
	prog := compiler.MustCompile(info, compiler.Options{})
	for _, mode := range []struct {
		name     string
		everyHop bool
	}{{"last-hop", false}, {"per-hop", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			rt := &compiler.Runtime{Prog: prog, CheckEveryHop: mode.everyHop}
			st := prog.NewState()
			envs := []compiler.HopEnv{
				{State: st, SwitchID: 1, PacketLen: 100},
				{State: st, SwitchID: 2, PacketLen: 100},
				{State: st, SwitchID: 1, PacketLen: 100}, // loop!
				{State: st, SwitchID: 3, PacketLen: 100},
			}
			caughtAt := -1
			for i := 0; i < b.N; i++ {
				var blob []byte
				caughtAt = -1
				for h, env := range envs {
					hr, err := rt.RunBlocks(blob, env, compiler.BlockSet{
						Init:      h == 0,
						Telemetry: true,
						Checker:   h == len(envs)-1 || rt.CheckEveryHop,
					}, h == 0, h == len(envs)-1)
					if err != nil {
						b.Fatal(err)
					}
					blob = hr.Blob
					if hr.Reject && caughtAt < 0 {
						caughtAt = h
					}
				}
			}
			b.ReportMetric(float64(caughtAt), "caught_at_hop")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation 2: loop unrolling factor / telemetry array capacity

// BenchmarkAblationArrayCapacity sweeps the path-trace capacity of the
// loop checker: larger arrays mean more telemetry bytes on the wire,
// more generated P4, and more unrolled work per hop.
func BenchmarkAblationArrayCapacity(b *testing.B) {
	for _, capacity := range []int{2, 4, 8, 16} {
		capacity := capacity
		b.Run(fmt.Sprintf("cap%d", capacity), func(b *testing.B) {
			src := fmt.Sprintf(`
tele bit<32>[%d] path;
tele bool revisited = false;
{ }
{
  if (switch_id in path) { revisited = true; }
  path.push(switch_id);
}
{ if (revisited) { reject; } }
`, capacity)
			prog, err := parser.Parse("ablation.indus", src)
			if err != nil {
				b.Fatal(err)
			}
			info, err := types.Check(prog)
			if err != nil {
				b.Fatal(err)
			}
			compiled, err := compiler.Compile(info, compiler.Options{Name: "ablation"})
			if err != nil {
				b.Fatal(err)
			}
			rt := &compiler.Runtime{Prog: compiled}
			st := compiled.NewState()
			env := compiler.HopEnv{State: st, SwitchID: 9, PacketLen: 100}
			var blob []byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hr, err := rt.RunHop(blob, env, i == 0, false)
				if err != nil {
					b.Fatal(err)
				}
				blob = hr.Blob
			}
			b.ReportMetric(float64((compiled.TeleWireBits()+7)/8), "tele_B")
			b.ReportMetric(float64(p4.LineCount(p4.Emit(compiled))), "p4_loc")
			b.ReportMetric(float64(resources.Analyze(compiled).AddedPHVBits), "phv_bits")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation 4: telemetry on-wire cost across the corpus

// BenchmarkAblationTelemetryBytes reports each checker's wire overhead
// (the bytes the Hydra header adds to every packet), the quantity that
// showed up as the serialization-delay delta in Figure 12.
func BenchmarkAblationTelemetryBytes(b *testing.B) {
	total := 0
	for _, p := range checkers.All {
		prog := compiler.MustCompile(checkers.MustParse(p.Key), compiler.Options{Name: p.Key})
		total += (prog.TeleWireBits() + 7) / 8
	}
	for i := 0; i < b.N; i++ {
		_ = total
	}
	b.ReportMetric(float64(total), "all_checkers_tele_B")
}

// ---------------------------------------------------------------------------
// End-to-end fabric benchmark

// BenchmarkFabricPacket measures a full end-to-end packet delivery
// (host -> leaf -> spine -> leaf -> host) through the simulator, with
// and without a checker attached.
func BenchmarkFabricPacket(b *testing.B) {
	run := func(b *testing.B, attach bool) {
		sim := netsim.NewSimulator()
		ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
		if attach {
			prog := compiler.MustCompile(checkers.MustParse("loop-freedom"), compiler.Options{})
			rt := &compiler.Runtime{Prog: prog}
			for _, sw := range ls.AllSwitches() {
				sw.AttachChecker(rt, nil)
			}
		}
		h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h1.SendUDP(h2.IP, uint16(i), 80, 64)
			sim.RunAll()
		}
		if h2.RxUDP != uint64(b.N) {
			b.Fatalf("delivered %d/%d", h2.RxUDP, b.N)
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, false) })
	b.Run("with-checker", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationTelemetryEncoding compares the packed (deparser
// bit-packed) and byte-aligned telemetry encodings across the corpus:
// wire bytes and codec time per hop.
func BenchmarkAblationTelemetryEncoding(b *testing.B) {
	for _, mode := range []struct {
		name    string
		aligned bool
	}{{"packed", false}, {"aligned", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			total := 0
			progs := make([]*pipeline.Program, 0, len(checkers.All))
			for _, p := range checkers.All {
				prog := compiler.MustCompile(checkers.MustParse(p.Key), compiler.Options{Name: p.Key, AlignedTele: mode.aligned})
				progs = append(progs, prog)
				total += (prog.TeleWireBits() + 7) / 8
			}
			phv := pipeline.PHV{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, prog := range progs {
					if err := prog.DecodeTele(nil, phv); err != nil {
						b.Fatal(err)
					}
					blob := prog.EncodeTele(phv)
					if err := prog.DecodeTele(blob, phv); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(total), "all_checkers_tele_B")
		})
	}
}
