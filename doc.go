// Package repro is a from-scratch Go reproduction of "Hydra: Effective
// Runtime Network Verification" (Renganathan et al., ACM SIGCOMM 2023):
// the Indus DSL and compiler, an executable match-action pipeline, a
// discrete-event network substrate, both case studies (§5), and the
// full evaluation harness (§6). See README.md for the tour, DESIGN.md
// for the system inventory, and EXPERIMENTS.md for paper-vs-measured
// results.
package repro
