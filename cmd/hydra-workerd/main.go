// Command hydra-workerd is one engine worker of the verification
// fleet: it accepts ingest sessions over the wire protocol, wraps the
// batched bytecode engine around each, and federates every report-bus
// digest window plus a final conservation summary to hydra-aggd.
//
// It prints "LISTEN <addr>" (ingest sessions) and "METRICS <addr>"
// (Prometheus endpoint) on stdout once bound, then serves sessions
// until SIGTERM. The checker set and fabric model are the campus
// replay corpus — the same configuration every other experiment runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/metrics"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:0", "ingest session address (host:port, :0 for ephemeral)")
		metricsAddr = flag.String("metrics", "", "Prometheus /metrics address (empty disables)")
		aggAddr     = flag.String("agg", "", "aggregator uplink address (empty runs standalone)")
		node        = flag.String("node", "worker", "node name in summaries")
		busWindow   = flag.Duration("bus-window", 5*time.Millisecond, "report-bus aggregation window")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("hydra-workerd: ")

	reg := metrics.NewRegistry()
	worker, err := fleet.NewWorker(fleet.WorkerConfig{
		Node:          *node,
		AggAddr:       *aggAddr,
		BuildCheckers: experiments.CorpusCheckers,
		Configure:     experiments.ConfigureReplayEngine,
		BusWindow:     *busWindow,
		Metrics:       reg,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatalf("config: %v", err)
	}
	if err := worker.Connect(); err != nil {
		log.Fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("LISTEN %s\n", ln.Addr())
	if *metricsAddr != "" {
		addr, err := reg.Serve(*metricsAddr)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		fmt.Printf("METRICS %s\n", addr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigc
		log.Printf("shutting down on %v", sig)
		worker.Close()
		ln.Close()
		os.Exit(0)
	}()

	if err := worker.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
