// Command hydra-ingestd is the fleet's capture fan-out daemon: it
// reads link-layer frames from a pcap file (or, on builds with the
// hydralive tag, a live AF_PACKET interface), pins every flow to an
// engine worker by RSS hash, and streams binary packet batches over
// the wire protocol under per-worker credit windows.
//
// The run's accounting — frames read, packets assigned/acked, every
// drop itemized by reason — is written as JSON to -out when the
// replay finishes. SIGTERM stops the dispatch loop early; the senders
// still drain and close their sessions in order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/metrics"
)

func main() {
	var (
		pcapPath    = flag.String("pcap", "", "capture file to replay")
		liveIface   = flag.String("live", "", "live capture interface (needs the hydralive build tag)")
		workers     = flag.String("workers", "", "comma-separated worker addresses (required)")
		node        = flag.String("node", "ingest", "node name in hello frames")
		batch       = flag.Int("batch", 256, "packets per wire batch")
		window      = flag.Int("window", 8, "per-worker send window in unacknowledged batches")
		loops       = flag.Int("loops", 1, "replay the capture this many times")
		skipSeed    = flag.Int("skip-seed-every", 0, "omit every Nth flow pair from the firewall seed (violation injection)")
		dropAfter   = flag.Duration("drop-after", 0, "drop a batch after blocking this long on a full window (0 blocks)")
		metricsAddr = flag.String("metrics", "", "Prometheus /metrics address (empty disables)")
		out         = flag.String("out", "", "write the run stats JSON here (empty writes stdout)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("hydra-ingestd: ")

	if (*pcapPath == "") == (*liveIface == "") {
		fmt.Fprintln(os.Stderr, "hydra-ingestd: exactly one of -pcap or -live is required")
		flag.Usage()
		os.Exit(2)
	}
	if *workers == "" {
		fmt.Fprintln(os.Stderr, "hydra-ingestd: -workers is required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		src fleet.Source
		err error
	)
	if *pcapPath != "" {
		src, err = fleet.OpenPcap(*pcapPath)
	} else {
		src, err = fleet.OpenLive(*liveIface)
	}
	if err != nil {
		log.Fatalf("opening capture: %v", err)
	}
	defer src.Close()

	reg := metrics.NewRegistry()
	ing, err := fleet.NewIngest(fleet.IngestConfig{
		Workers:       strings.Split(*workers, ","),
		Node:          *node,
		PathFor:       experiments.ReplayPathFor,
		BatchSize:     *batch,
		Window:        *window,
		Loops:         *loops,
		SkipSeedEvery: *skipSeed,
		DropAfter:     *dropAfter,
		Metrics:       reg,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatalf("config: %v", err)
	}
	if *metricsAddr != "" {
		addr, err := reg.Serve(*metricsAddr)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		fmt.Printf("METRICS %s\n", addr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigc
		log.Printf("stopping on %v", sig)
		ing.Stop()
	}()

	start := time.Now()
	stats, err := ing.Run(src)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	log.Printf("replayed %d packets (%d acked) in %v", stats.Packets, stats.Acked, time.Since(start).Round(time.Millisecond))

	data, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		log.Fatalf("encoding stats: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	for _, w := range stats.Workers {
		if w.Error != "" {
			log.Fatalf("worker %s failed: %s", w.Addr, w.Error)
		}
	}
}
