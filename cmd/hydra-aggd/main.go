// Command hydra-aggd is the fleet aggregation daemon: engine workers
// dial it, stream their windowed violation aggregates and session
// summaries upstream, and it merges everything into one fleet-wide
// report with exact digest-conservation accounting.
//
// It prints "LISTEN <addr>" (worker uplink) and "METRICS <addr>"
// (Prometheus endpoint) on stdout once bound, then runs until -expect
// session summaries arrive, -timeout expires, or SIGTERM — whichever
// comes first — and writes the fleet report as JSON to -out.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:0", "worker uplink address (host:port, :0 for ephemeral)")
		metricsAddr = flag.String("metrics", "", "Prometheus /metrics address (empty disables)")
		node        = flag.String("node", "agg", "node name in the fleet report")
		expect      = flag.Int("expect", 0, "exit after this many session summaries (0 runs until SIGTERM)")
		timeout     = flag.Duration("timeout", 5*time.Minute, "bound on waiting for -expect summaries")
		out         = flag.String("out", "", "write the fleet report JSON here (empty writes stdout)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("hydra-aggd: ")

	reg := metrics.NewRegistry()
	agg := fleet.NewAgg(fleet.AggConfig{Node: *node, Metrics: reg, Logf: log.Printf})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("LISTEN %s\n", ln.Addr())
	if *metricsAddr != "" {
		addr, err := reg.Serve(*metricsAddr)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		fmt.Printf("METRICS %s\n", addr)
	}
	go func() {
		if err := agg.Serve(ln); err != nil {
			log.Printf("serve ended: %v", err)
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan bool, 1)
	if *expect > 0 {
		go func() { done <- agg.WaitSummaries(*expect, *timeout) }()
	}
	complete := true
	select {
	case complete = <-done:
	case sig := <-sigc:
		log.Printf("finalizing on %v", sig)
	}
	ln.Close()

	rep := agg.Report()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("encoding report: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	if !complete {
		log.Fatalf("timed out after %v with %d/%d summaries", *timeout, agg.Summaries(), *expect)
	}
}
