// Command indusc is the Indus compiler CLI (§4): it reads an Indus
// program (a file or a named corpus property), type-checks it, and
// emits the generated P4 plus a resource report.
//
// Usage:
//
//	indusc -list
//	indusc -property multi-tenancy [-o out.p4] [-report] [-ir]
//	indusc -in checker.indus [-o out.p4] [-report] [-ir]
//	indusc -in checker.indus -fmt        # pretty-print only
//	indusc -ltl 'G !(a & X F a)'         # compile an LTLf formula (Theorem 3.1)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/indus/format"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
	"repro/internal/ltlf"
	"repro/internal/p4"
	"repro/internal/resources"
)

func main() {
	var (
		in       = flag.String("in", "", "Indus source file to compile")
		property = flag.String("property", "", "compile a named corpus property instead of a file")
		out      = flag.String("o", "", "write generated P4 here (default stdout)")
		list     = flag.Bool("list", false, "list the corpus properties and exit")
		report   = flag.Bool("report", false, "print the Tofino resource report")
		showIR   = flag.Bool("ir", false, "print pipeline IR statistics")
		fmtOnly  = flag.Bool("fmt", false, "pretty-print the Indus program and exit")
		ltl      = flag.String("ltl", "", "compile an LTLf formula instead of a file (atoms become header bools)")
		traceCap = flag.Int("trace-cap", 8, "with -ltl: maximum trace length the checker supports")
	)
	flag.Parse()

	if *list {
		for _, p := range checkers.All {
			fmt.Printf("%-18s %s\n", p.Key, p.Description)
		}
		return
	}

	var src, name string
	switch {
	case *ltl != "":
		f, err := ltlf.ParseFormula(*ltl)
		if err != nil {
			fatalf("%v", err)
		}
		src, name = ltlf.ToIndus(f, *traceCap), "ltlf"
	case *property != "":
		p, ok := checkers.ByKey(*property)
		if !ok {
			fatalf("unknown property %q (use -list)", *property)
		}
		src, name = p.Source, p.Key
	case *in != "":
		data, err := os.ReadFile(*in)
		if err != nil {
			fatalf("%v", err)
		}
		src = string(data)
		name = filepath.Base(*in)
	default:
		flag.Usage()
		os.Exit(2)
	}

	prog, err := parser.Parse(name, src)
	if err != nil {
		fatalf("parse error:\n%v", err)
	}
	if *fmtOnly {
		fmt.Print(format.Program(prog))
		return
	}
	info, err := types.Check(prog)
	if err != nil {
		fatalf("type error:\n%v", err)
	}
	compiled, err := compiler.Compile(info, compiler.Options{Name: name})
	if err != nil {
		fatalf("compile error: %v", err)
	}

	p4src := p4.Emit(compiled)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(p4src), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d LoC)\n", *out, p4.LineCount(p4src))
	} else {
		fmt.Print(p4src)
	}

	if *showIR {
		fmt.Fprintf(os.Stderr, "IR: %d tables, %d registers, %d telemetry fields (%d bits on wire)\n",
			len(compiled.Tables), len(compiled.Registers), len(compiled.Tele), compiled.TeleWireBits())
	}
	if *report {
		r := resources.Analyze(compiled)
		fmt.Fprintf(os.Stderr, "resources: stages standalone=%d merged=%d (baseline %d); PHV +%d bits -> %.2f%% (baseline %.2f%%)\n",
			r.StandaloneStages, r.MergedStages, resources.BaselineStages,
			r.AddedPHVBits, r.PHVPct, resources.BaselinePHVPct)
		fmt.Fprintf(os.Stderr, "           chains: init=%d telemetry=%d checker=%d; header %d bits, metadata %d bits (bridged)\n",
			r.ChainInit, r.ChainTelemetry, r.ChainChecker, r.HeaderContainerBits, r.MetaContainerBits)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "indusc: "+format+"\n", args...)
	os.Exit(1)
}
