// Command hydra-sim runs the paper's case studies end to end on the
// simulated substrate and narrates what happens.
//
// Usage:
//
//	hydra-sim -scenario valleyfree    # §5.1: valley-free source routing
//	hydra-sim -scenario aether-bug    # §5.2: the Figure 11 filtering bug
//	hydra-sim -scenario aether-fixed  # same scenario, repaired controller
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/aether"
	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/dataplane"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/srcrouting"
)

func main() {
	scenario := flag.String("scenario", "valleyfree", "valleyfree | aether-bug | aether-fixed")
	flag.Parse()

	switch *scenario {
	case "valleyfree":
		valleyFree()
	case "aether-bug":
		aetherBug(false)
	case "aether-fixed":
		aetherBug(true)
	default:
		fmt.Fprintf(os.Stderr, "hydra-sim: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
}

func valleyFree() {
	sim := netsim.NewSimulator()
	f := srcrouting.Build(sim)

	info := checkers.MustParse("valley-free")
	prog := compiler.MustCompile(info, compiler.Options{Name: "valley-free"})
	rt := &compiler.Runtime{Prog: prog}
	for _, sw := range f.Switches() {
		att := sw.AttachChecker(rt, nil)
		spine := uint64(0)
		if f.IsSpine(sw) {
			spine = 1
		}
		must(att.State.Tables["is_spine_switch"].Insert(pipeline.Entry{
			Action: []pipeline.Value{pipeline.B(1, spine)},
		}))
	}

	fmt.Println("=== §5.1 valley-free source routing (Figure 8 topology) ===")
	legal, errant := 0, 0
	for _, src := range f.Hosts() {
		for _, dst := range f.Hosts() {
			if src == dst {
				continue
			}
			for _, path := range f.ValleyFreePaths(src, dst) {
				route, err := f.Route(path, dst)
				must(err)
				src.SendSourceRouted(dst.IP, route, 64)
				legal++
			}
			if f.Leaf(src) != f.Leaf(dst) {
				for _, path := range f.ValleyPaths(src, dst) {
					route, err := f.Route(path, dst)
					must(err)
					src.SendSourceRouted(dst.IP, route, 64)
					errant++
				}
			}
		}
	}
	sim.RunAll()

	delivered := uint64(0)
	rejected := uint64(0)
	for _, h := range f.Hosts() {
		delivered += h.RxUDP
	}
	for _, sw := range f.Switches() {
		rejected += sw.Checker().Rejected
	}
	fmt.Printf("sent: %d valley-free + %d errant (buggy sender) packets\n", legal, errant)
	fmt.Printf("delivered: %d (want %d)  rejected by Hydra at the edge: %d (want %d)\n",
		delivered, legal, rejected, errant)
	if delivered == uint64(legal) && rejected == uint64(errant) {
		fmt.Println("RESULT: all valley-free paths allowed, all errant paths dropped — matches §5.1")
	} else {
		fmt.Println("RESULT: MISMATCH")
		os.Exit(1)
	}
}

func aetherBug(fixed bool) {
	sim := netsim.NewSimulator()
	d := aether.Build(sim, aether.Options{WithChecker: true, FixedONOS: fixed})
	d.Core.DefineSlice(&aether.Slice{ID: 1, Rules: []aether.FilterRule{
		{Priority: 10, Allow: false},
		{Priority: 20, Proto: dataplane.ProtoUDP, PortLo: 81, PortHi: 81, Allow: true},
	}})

	mode := "buggy ONOS (as deployed)"
	if fixed {
		mode = "repaired ONOS (reconciling)"
	}
	fmt.Printf("=== §5.2 Aether application filtering — %s ===\n", mode)

	c1, err := d.Core.Attach("imsi-001", 1)
	must(err)
	fmt.Printf("client 1 attached: ue=%s teid=%d\n", c1.IP, c1.TEIDUp)

	d.SendUplink(c1, aether.ServerAddr, dataplane.ProtoUDP, 81, 100)
	sim.RunAll()
	fmt.Printf("phase 1: client 1 -> server:81/udp  delivered=%d reports=%d\n",
		d.Server.RxUDP, len(d.HydraApp.Reports))

	fmt.Println("portal update: allow udp 81-82 at priority 25")
	must(d.UpdatePortal(1, []aether.FilterRule{
		{Priority: 10, Allow: false},
		{Priority: 25, Proto: dataplane.ProtoUDP, PortLo: 81, PortHi: 82, Allow: true},
	}))
	c2, err := d.Core.Attach("imsi-002", 1)
	must(err)
	fmt.Printf("client 2 attached: ue=%s; UPF now: %s\n", c2.IP, d.UPF)

	d.SendUplink(c2, aether.ServerAddr, dataplane.ProtoUDP, 81, 100)
	sim.RunAll()
	fmt.Printf("phase 2: client 2 -> server:81/udp  delivered=%d reports=%d\n",
		d.Server.RxUDP, len(d.HydraApp.Reports))

	before := d.Server.RxUDP
	d.SendUplink(c1, aether.ServerAddr, dataplane.ProtoUDP, 81, 100)
	sim.RunAll()
	dropped := d.Server.RxUDP == before
	fmt.Printf("phase 3: client 1 -> server:81/udp  dropped=%v reports=%d\n",
		dropped, len(d.HydraApp.Reports))

	if !fixed {
		if dropped && len(d.HydraApp.Reports) == 1 {
			rep := d.HydraApp.Reports[0]
			fmt.Printf("RESULT: bug reproduced and caught — switch %d reported ue=%s proto=%d app=%s port=%d intent=allow\n",
				rep.Switch, rep.UEAddr, rep.Proto, rep.AppAddr, rep.L4Port)
			return
		}
		fmt.Println("RESULT: MISMATCH — the bug should drop the packet and raise one report")
		os.Exit(1)
	}
	if !dropped && len(d.HydraApp.Reports) == 0 {
		fmt.Println("RESULT: repaired controller delivers the packet, Hydra stays silent")
		return
	}
	fmt.Println("RESULT: MISMATCH under the repaired controller")
	os.Exit(1)
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-sim: %v\n", err)
		os.Exit(1)
	}
}
