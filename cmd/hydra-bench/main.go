// Command hydra-bench regenerates every table and figure of the paper's
// evaluation (§6) from the simulated substrate.
//
// Usage:
//
//	hydra-bench -table1                    # Table 1 (LoC, stages, PHV)
//	hydra-bench -fig12a -fig12b            # Figure 12 RTT experiment
//	hydra-bench -throughput                # campus-replay throughput
//	hydra-bench -engine -shards 1,4,8      # sharded checker-engine replay
//	hydra-bench -all                       # everything
//
// Figure 12's duration/background scale with -duration and -bps; see
// EXPERIMENTS.md for how the defaults relate to the paper's setup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/netsim"
)

func main() {
	var (
		table1     = flag.Bool("table1", false, "regenerate Table 1")
		fig12a     = flag.Bool("fig12a", false, "regenerate Figure 12a (RTT over time)")
		fig12b     = flag.Bool("fig12b", false, "regenerate Figure 12b (RTT CDF + t-test)")
		throughput = flag.Bool("throughput", false, "regenerate the throughput comparison")
		engineRun  = flag.Bool("engine", false, "run the sharded checker-engine replay")
		all        = flag.Bool("all", false, "run everything")

		durationS = flag.Float64("duration", 5, "figure 12: seconds of simulated time per configuration")
		bps       = flag.Int64("bps", 2_000_000_000, "figure 12: background load per direction (bit/s)")
		pingMs    = flag.Float64("ping-ms", 10, "figure 12: ping interval (ms)")
		packets   = flag.Int("packets", 50000, "throughput: packets to replay")
		shards    = flag.String("shards", "1,4,8", "engine: comma-separated worker counts (0 = GOMAXPROCS)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchJSON  = flag.String("benchjson", "", "write engine replay results as JSON to this file (- for stdout)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		must(err)
		must(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			must(f.Close())
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			must(err)
			runtime.GC()
			must(pprof.WriteHeapProfile(f))
			must(f.Close())
		}()
	}

	if *all {
		*table1, *fig12a, *fig12b, *throughput, *engineRun = true, true, true, true, true
	}
	if !*table1 && !*fig12a && !*fig12b && !*throughput && !*engineRun {
		flag.Usage()
		os.Exit(2)
	}

	if *table1 {
		rows, err := experiments.Table1()
		must(err)
		fmt.Println(experiments.FormatTable1(rows))
	}

	if *fig12a || *fig12b {
		fmt.Fprintf(os.Stderr, "running figure 12 experiment (%.1fs sim time x 2 configurations)...\n", *durationS)
		r, err := experiments.RunFig12(experiments.Fig12Config{
			Duration:      netsim.Time(*durationS * float64(netsim.Second)),
			PingInterval:  netsim.Time(*pingMs * float64(netsim.Millisecond)),
			BackgroundBps: *bps,
		})
		must(err)
		if *fig12a {
			fmt.Println(experiments.FormatFig12a(r))
		}
		if *fig12b {
			fmt.Println(experiments.FormatFig12b(r))
		}
	}

	if *throughput {
		fmt.Fprintln(os.Stderr, "running throughput replay x 2 configurations...")
		base, chk, err := experiments.RunThroughput(experiments.ThroughputConfig{Packets: *packets})
		must(err)
		fmt.Println(experiments.FormatThroughput(base, chk))
	}

	if *engineRun {
		counts, err := parseShards(*shards)
		must(err)
		var results []experiments.EngineReplayResult
		for _, n := range counts {
			fmt.Fprintf(os.Stderr, "running engine replay with %d shard(s)...\n", n)
			r, err := experiments.RunEngineReplay(experiments.EngineReplayConfig{
				Packets: *packets, Shards: n,
			})
			must(err)
			results = append(results, r)
		}
		fmt.Println(experiments.FormatEngineReplay(results))
		if *benchJSON != "" {
			must(writeBenchJSON(*benchJSON, results))
		}
	} else if *benchJSON != "" {
		fmt.Fprintln(os.Stderr, "hydra-bench: -benchjson requires -engine (or -all)")
		os.Exit(2)
	}
}

// writeBenchJSON emits the engine replay results in a flat,
// machine-readable form for dashboards and regression tooling.
func writeBenchJSON(path string, results []experiments.EngineReplayResult) error {
	type row struct {
		Shards    int     `json:"shards"`
		Packets   uint64  `json:"packets"`
		Forwarded uint64  `json:"forwarded"`
		Rejected  uint64  `json:"rejected"`
		Reports   uint64  `json:"reports"`
		Errors    uint64  `json:"errors"`
		PPS       float64 `json:"pps"`
	}
	rows := make([]row, len(results))
	for i, r := range results {
		rows[i] = row{
			Shards:    r.Shards,
			Packets:   r.Counts.Packets,
			Forwarded: r.Counts.Forwarded,
			Rejected:  r.Counts.Rejected,
			Reports:   r.Counts.Reports,
			Errors:    r.Counts.Errors,
			PPS:       r.WallPktsPerSec,
		}
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -shards value %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-bench: %v\n", err)
		os.Exit(1)
	}
}
