// Command hydra-bench regenerates every table and figure of the paper's
// evaluation (§6) from the simulated substrate.
//
// Usage:
//
//	hydra-bench -table1                    # Table 1 (LoC, stages, PHV)
//	hydra-bench -fig12a -fig12b            # Figure 12 RTT experiment
//	hydra-bench -throughput                # campus-replay throughput
//	hydra-bench -engine -shards 1,4,8      # sharded checker-engine replay
//	hydra-bench -wire                      # end-to-end wire-path replay
//	hydra-bench -storm                     # report-storm replay on the bus
//	hydra-bench -chaos -seed 1 -faultrate 0.02   # fault-injection detection matrix
//	hydra-bench -symcheck                  # symbolic backend-equivalence proof
//	hydra-bench -atoms                     # incremental control-plane verification churn
//	hydra-bench -fleet                     # multi-process fleet parity harness
//	hydra-bench -soak                      # fleet harness with a worker kill/restart
//	hydra-bench -all                       # every in-process experiment
//
// -fleet and -soak spawn the hydra-ingestd/workerd/aggd process tree
// and therefore cannot be combined with the in-process modes (or each
// other) in one invocation.
//
// Figure 12's duration/background scale with -duration and -bps; see
// EXPERIMENTS.md for how the defaults relate to the paper's setup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/netsim"
)

func main() {
	var (
		table1     = flag.Bool("table1", false, "regenerate Table 1")
		fig12a     = flag.Bool("fig12a", false, "regenerate Figure 12a (RTT over time)")
		fig12b     = flag.Bool("fig12b", false, "regenerate Figure 12b (RTT CDF + t-test)")
		throughput = flag.Bool("throughput", false, "regenerate the throughput comparison")
		engineRun  = flag.Bool("engine", false, "run the sharded checker-engine replay")
		wireRun    = flag.Bool("wire", false, "run the end-to-end wire-path replay")
		stormRun   = flag.Bool("storm", false, "run the report-storm replay (baseline vs always-violating probe on the report bus)")
		chaosRun   = flag.Bool("chaos", false, "run the fault-injection campaign and print the checker detection matrix")
		symRun     = flag.Bool("symcheck", false, "prove interpreter/map/linked backend equivalence over the modeled space (E13)")
		atomsRun   = flag.Bool("atoms", false, "run the incremental control-plane verification churn on a fat-tree (E16)")
		fleetRun   = flag.Bool("fleet", false, "run the multi-process fleet harness and assert verdict parity with the in-process engine (E17)")
		soakRun    = flag.Bool("soak", false, "run the fleet harness with a worker kill/restart mid-stream; asserts conservation (E17)")
		all        = flag.Bool("all", false, "run every in-process experiment")

		durationS = flag.Float64("duration", 5, "figure 12: seconds of simulated time per configuration")
		bps       = flag.Int64("bps", 2_000_000_000, "figure 12: background load per direction (bit/s)")
		pingMs    = flag.Float64("ping-ms", 10, "figure 12: ping interval (ms)")
		packets   = flag.Int("packets", 50000, "throughput: packets to replay")
		shards    = flag.String("shards", "1,4,8", "engine: comma-separated worker counts (0 = GOMAXPROCS)")
		simShards = flag.Int("simshards", 1, "wire/chaos: partition the netsim event loop into N parallel shards (1 = sequential; results are byte-identical at any count)")
		noBatch   = flag.Bool("nobatch", false, "engine: disable the bytecode-VM batched path (per-packet linked executor, the pre-batching baseline)")
		seed      = flag.Int64("seed", 1, "chaos: campaign seed (traffic + every fault injector)")
		faultRate = flag.Float64("faultrate", 0.02, "chaos: per-packet/per-frame fault probability")
		chaosJSON = flag.String("chaosjson", "", "chaos: write the byte-reproducible detection matrix as JSON to this file (- for stdout)")

		atomsK       = flag.Int("atomsk", 8, "atoms: fat-tree arity")
		atomsUpdates = flag.Int("atomsupdates", 2000, "atoms: route mutations to drive")

		fleetWorkers = flag.Int("fleetworkers", 2, "fleet/soak: engine worker processes")
		fleetLoops   = flag.Int("fleetloops", 1, "fleet/soak: replay the capture this many times")
		fleetBin     = flag.String("fleetbin", "", "fleet/soak: directory with prebuilt hydra-{ingestd,workerd,aggd} (empty builds them)")
		fleetRSS     = flag.Uint64("fleetrss", 0, "fleet/soak: fail if any daemon's peak RSS exceeds this many KB (0 = unchecked)")

		symJSON     = flag.String("symjson", "", "symcheck: write the full report as JSON to this file (- for stdout)")
		frontierOut = flag.String("frontierout", "", "symcheck: regenerate the frontier seed corpus into this directory")
		fuzzSeedOut = flag.String("fuzzseedout", "", "symcheck: write FuzzParse seeds for the frontier packets into this directory")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchJSON  = flag.String("benchjson", "", "write engine replay results as JSON to this file (- for stdout)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		must(err)
		must(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			must(f.Close())
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			must(err)
			runtime.GC()
			must(pprof.WriteHeapProfile(f))
			must(f.Close())
		}()
	}

	if *all {
		*table1, *fig12a, *fig12b, *throughput, *engineRun, *wireRun, *stormRun, *chaosRun, *symRun, *atomsRun = true, true, true, true, true, true, true, true, true, true
	}
	var selected []string
	for _, m := range []struct {
		name string
		set  bool
	}{
		{"table1", *table1}, {"fig12a", *fig12a}, {"fig12b", *fig12b},
		{"throughput", *throughput}, {"engine", *engineRun}, {"wire", *wireRun},
		{"storm", *stormRun}, {"chaos", *chaosRun}, {"symcheck", *symRun},
		{"atoms", *atomsRun}, {"fleet", *fleetRun}, {"soak", *soakRun},
	} {
		if m.set {
			selected = append(selected, m.name)
		}
	}
	if err := validateModes(selected); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-bench: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if *table1 {
		rows, err := experiments.Table1()
		must(err)
		fmt.Println(experiments.FormatTable1(rows))
	}

	if *fig12a || *fig12b {
		fmt.Fprintf(os.Stderr, "running figure 12 experiment (%.1fs sim time x 2 configurations)...\n", *durationS)
		r, err := experiments.RunFig12(experiments.Fig12Config{
			Duration:      netsim.Time(*durationS * float64(netsim.Second)),
			PingInterval:  netsim.Time(*pingMs * float64(netsim.Millisecond)),
			BackgroundBps: *bps,
		})
		must(err)
		if *fig12a {
			fmt.Println(experiments.FormatFig12a(r))
		}
		if *fig12b {
			fmt.Println(experiments.FormatFig12b(r))
		}
	}

	if *throughput {
		fmt.Fprintln(os.Stderr, "running throughput replay x 2 configurations...")
		base, chk, err := experiments.RunThroughput(experiments.ThroughputConfig{Packets: *packets})
		must(err)
		fmt.Println(experiments.FormatThroughput(base, chk))
	}

	var engineResults []experiments.EngineReplayResult
	var batchResult *experiments.EngineReplayResult
	var wireResult *experiments.WireReplayResult
	if *engineRun {
		counts, err := parseShards(*shards)
		must(err)
		for _, n := range counts {
			fmt.Fprintf(os.Stderr, "running engine replay with %d shard(s)...\n", n)
			r, err := experiments.RunEngineReplay(experiments.EngineReplayConfig{
				Packets: *packets, Shards: n, NoBatch: *noBatch,
			})
			must(err)
			engineResults = append(engineResults, r)
		}
		fmt.Println(experiments.FormatEngineReplay(engineResults))
		if !*noBatch {
			fmt.Fprintln(os.Stderr, "running batched single-shard replay (no dispatch queues)...")
			r, err := experiments.RunBatchReplay(experiments.EngineReplayConfig{Packets: *packets})
			must(err)
			batchResult = &r
			fmt.Printf("Batch:  steady-state batched checking, 1 shard: %.0f pkts/s (%.0f ns/pkt)\n\n",
				r.WallPktsPerSec, 1e9/r.WallPktsPerSec)
		}
	}

	if *wireRun {
		fmt.Fprintf(os.Stderr, "running end-to-end wire replay (simshards=%d)...\n", *simShards)
		r, err := experiments.RunWireReplay(experiments.WireReplayConfig{Packets: *packets, SimShards: *simShards})
		must(err)
		wireResult = &r
		fmt.Println(experiments.FormatWireReplay(r))
	}

	var stormResult *experiments.StormResult
	if *stormRun {
		fmt.Fprintln(os.Stderr, "running report-storm replay (baseline + storm passes)...")
		r, err := experiments.RunStorm(experiments.StormConfig{Packets: *packets, Seed: 5})
		must(err)
		stormResult = &r
		fmt.Println(experiments.FormatStorm(r))
	}

	if *chaosRun {
		fmt.Fprintf(os.Stderr, "running chaos campaign (seed=%d rate=%g, baseline + %d fault classes)...\n",
			*seed, *faultRate, len(faults.Classes()))
		r, err := experiments.RunChaos(experiments.ChaosConfig{
			Packets: *packets, Seed: *seed, FaultRate: *faultRate, SimShards: *simShards,
		})
		must(err)
		fmt.Println(experiments.FormatChaos(r))
		if *chaosJSON != "" {
			data, err := r.Matrix.JSON()
			must(err)
			data = append(data, '\n')
			if *chaosJSON == "-" {
				_, err = os.Stdout.Write(data)
				must(err)
			} else {
				must(os.WriteFile(*chaosJSON, data, 0o644))
			}
		}
	}

	if *symRun {
		fmt.Fprintln(os.Stderr, "running symbolic backend-equivalence suite over the checker corpus...")
		r, err := experiments.RunSymcheck(experiments.SymcheckConfig{
			FrontierDir: *frontierOut,
			FuzzSeedDir: *fuzzSeedOut,
		})
		must(err)
		fmt.Println(experiments.FormatSymcheck(r))
		if *symJSON != "" {
			data, err := json.MarshalIndent(r, "", "  ")
			must(err)
			data = append(data, '\n')
			if *symJSON == "-" {
				_, err = os.Stdout.Write(data)
				must(err)
			} else {
				must(os.WriteFile(*symJSON, data, 0o644))
			}
		}
		if !r.Passed {
			fmt.Fprintln(os.Stderr, "hydra-bench: symcheck failed")
			os.Exit(1)
		}
	}

	var atomsResult *experiments.AtomsResult
	if *atomsRun {
		fmt.Fprintf(os.Stderr, "running atoms churn (k=%d, %d updates)...\n", *atomsK, *atomsUpdates)
		r, err := experiments.RunAtomsChurn(experiments.AtomsConfig{
			K: *atomsK, Updates: *atomsUpdates, Seed: *seed,
		})
		must(err)
		atomsResult = &r
		fmt.Println(experiments.FormatAtoms(r))
	}

	if *fleetRun || *soakRun {
		kind := "fleet parity"
		if *soakRun {
			kind = "fleet soak (worker kill/restart)"
		}
		fmt.Fprintf(os.Stderr, "running %s harness (%d packets, %d workers, %d loop(s))...\n",
			kind, *packets, *fleetWorkers, *fleetLoops)
		res, err := experiments.RunFleet(experiments.FleetConfig{
			Packets:  *packets,
			Seed:     *seed,
			Workers:  *fleetWorkers,
			Loops:    *fleetLoops,
			Kill:     *soakRun,
			MaxRSSKB: *fleetRSS,
			BinDir:   *fleetBin,
			Logf:     func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
		})
		must(err)
		fmt.Println(experiments.FormatFleet(res))
		if !res.OK() {
			fmt.Fprintln(os.Stderr, "hydra-bench: fleet run failed its acceptance checks")
			os.Exit(1)
		}
	}

	if *benchJSON != "" {
		if !*engineRun && !*wireRun && !*stormRun && !*atomsRun {
			fmt.Fprintln(os.Stderr, "hydra-bench: -benchjson requires -engine, -wire, -storm or -atoms (or -all)")
			os.Exit(2)
		}
		must(writeBenchJSON(*benchJSON, engineResults, batchResult, wireResult, stormResult, atomsResult))
	}
}

// validateModes enforces the mode-flag contract: at least one mode,
// and the process-tree modes (-fleet, -soak) standalone — they own
// the machine's cores and the measurement, so combining them with
// each other or with in-process experiments would skew both.
func validateModes(selected []string) error {
	var heavy, inproc []string
	for _, m := range selected {
		if m == "fleet" || m == "soak" {
			heavy = append(heavy, m)
		} else {
			inproc = append(inproc, m)
		}
	}
	if len(heavy) > 1 {
		return fmt.Errorf("-%s and -%s are mutually exclusive", heavy[0], heavy[1])
	}
	if len(heavy) == 1 && len(inproc) > 0 {
		return fmt.Errorf("-%s cannot be combined with -%s: the fleet harness runs standalone", heavy[0], inproc[0])
	}
	if len(selected) == 0 {
		return fmt.Errorf("no mode selected: pass one or more experiment flags (or -all), or -fleet / -soak")
	}
	return nil
}

// writeBenchJSON emits the replay results in a flat, machine-readable
// form for dashboards and regression tooling.
func writeBenchJSON(path string, engine []experiments.EngineReplayResult, batch *experiments.EngineReplayResult, wire *experiments.WireReplayResult, storm *experiments.StormResult, atoms *experiments.AtomsResult) error {
	type engineRow struct {
		Shards    int     `json:"shards"`
		Packets   uint64  `json:"packets"`
		Forwarded uint64  `json:"forwarded"`
		Rejected  uint64  `json:"rejected"`
		Reports   uint64  `json:"reports"`
		Errors    uint64  `json:"errors"`
		PPS       float64 `json:"pps"`
	}
	type batchRow struct {
		BatchPPS float64 `json:"batch_pps"`
		NsPerPkt float64 `json:"ns_per_pkt"`
	}
	type wireRow struct {
		PPS       float64 `json:"pps"`
		Delivered uint64  `json:"delivered"`
		Checked   uint64  `json:"checked"`
		Rejected  uint64  `json:"rejected"`
		FastTx    uint64  `json:"fast_tx"`
		SlowTx    uint64  `json:"slow_tx"`
		Errors    uint64  `json:"errors"`
	}
	// simRow surfaces where a partitioned run's barrier time goes:
	// events per run, window count, the lookahead bound, and how evenly
	// the shards split the event load.
	type simRow struct {
		Shards      int      `json:"shards"`
		LookaheadNs int64    `json:"lookahead_ns"`
		Barriers    uint64   `json:"barriers"`
		Events      uint64   `json:"events"`
		ShardEvents []uint64 `json:"shard_events,omitempty"`
	}
	type stormRow struct {
		BaselinePPS float64 `json:"baseline_pps"`
		StormPPS    float64 `json:"storm_pps"`
		PPSRatio    float64 `json:"pps_ratio"`
		Raised      uint64  `json:"raised"`
		Exported    uint64  `json:"exported"`
		Aggregates  uint64  `json:"aggregates"`
		Suppressed  uint64  `json:"suppressed"`
		Overflow    uint64  `json:"overflow"`
		MaxLive     int     `json:"max_live"`
		Unaccounted int64   `json:"unaccounted"`
	}
	type atomsRow struct {
		Atoms       int     `json:"atoms"`
		Routes      int     `json:"routes"`
		ReplayNs    float64 `json:"replay_ns_per_update"`
		ChurnNs     float64 `json:"churn_ns_per_update"`
		MaxAffected int     `json:"max_affected"`
		AvgAffected float64 `json:"avg_affected"`
	}
	out := struct {
		Engine []engineRow `json:"engine,omitempty"`
		Batch  *batchRow   `json:"batch,omitempty"`
		Wire   *wireRow    `json:"wire,omitempty"`
		Sim    *simRow     `json:"sim,omitempty"`
		Storm  *stormRow   `json:"storm,omitempty"`
		Atoms  *atomsRow   `json:"atoms,omitempty"`
	}{}
	if batch != nil {
		out.Batch = &batchRow{
			BatchPPS: batch.WallPktsPerSec,
			NsPerPkt: 1e9 / batch.WallPktsPerSec,
		}
	}
	for _, r := range engine {
		out.Engine = append(out.Engine, engineRow{
			Shards:    r.Shards,
			Packets:   r.Counts.Packets,
			Forwarded: r.Counts.Forwarded,
			Rejected:  r.Counts.Rejected,
			Reports:   r.Counts.Reports,
			Errors:    r.Counts.Errors,
			PPS:       r.WallPktsPerSec,
		})
	}
	if wire != nil {
		out.Wire = &wireRow{
			PPS:       wire.WallPktsPerSec,
			Delivered: wire.Delivered,
			Checked:   wire.Checked,
			Rejected:  wire.Rejected,
			FastTx:    wire.FastTxFrames,
			SlowTx:    wire.SlowTxFrames,
			Errors:    wire.ParseErrors,
		}
		out.Sim = &simRow{
			Shards:      wire.Sim.Shards,
			LookaheadNs: int64(wire.Sim.Lookahead),
			Barriers:    wire.Sim.Barriers,
			Events:      wire.Sim.EventsRun,
			ShardEvents: wire.Sim.ShardEvents,
		}
	}
	if storm != nil {
		out.Storm = &stormRow{
			BaselinePPS: storm.Baseline.WallPktsPerSec,
			StormPPS:    storm.Storm.WallPktsPerSec,
			PPSRatio:    storm.PPSRatio,
			Raised:      storm.Storm.Raised,
			Exported:    storm.Storm.ExportedDigests,
			Aggregates:  storm.Storm.EmittedAggregates,
			Suppressed:  storm.Storm.Suppressed,
			Overflow:    storm.Storm.OverflowDigests,
			MaxLive:     storm.Storm.MaxLiveAggregates,
			Unaccounted: storm.Storm.Unaccounted,
		}
	}
	if atoms != nil {
		out.Atoms = &atomsRow{
			Atoms:       atoms.Atoms,
			Routes:      atoms.Routes,
			ReplayNs:    atoms.ReplayNsPerUpdate,
			ChurnNs:     atoms.ChurnNsPerUpdate,
			MaxAffected: atoms.MaxAffected,
			AvgAffected: atoms.AvgAffected,
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -shards value %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-bench: %v\n", err)
		os.Exit(1)
	}
}
