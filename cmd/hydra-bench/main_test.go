package main

import (
	"strings"
	"testing"
)

func TestValidateModes(t *testing.T) {
	cases := []struct {
		name     string
		selected []string
		wantErr  string // substring; empty means valid
	}{
		{"none", nil, "no mode selected"},
		{"one inproc", []string{"engine"}, ""},
		{"many inproc", []string{"table1", "engine", "wire", "atoms"}, ""},
		{"fleet alone", []string{"fleet"}, ""},
		{"soak alone", []string{"soak"}, ""},
		{"fleet+soak", []string{"fleet", "soak"}, "mutually exclusive"},
		{"fleet+engine", []string{"engine", "fleet"}, "cannot be combined"},
		{"soak+table1", []string{"table1", "soak"}, "cannot be combined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateModes(c.selected)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validateModes(%v) = %v, want nil", c.selected, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("validateModes(%v) = %v, want error containing %q", c.selected, err, c.wantErr)
			}
		})
	}
}
