package repro_test

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/experiments"
)

// benchBaseline is the committed performance envelope in
// BENCH_baseline.json. PHV usage is a deterministic compile-time
// metric, so it is guarded tightly; packets-per-second is wall-clock
// and machine-dependent, so the guard only fails when throughput drops
// below EnginePPS×PPSMinFactor. The factor is 0.5: tight enough that
// losing the bytecode-VM batched path (or an accidental O(n²), or a
// lock on the per-packet path) fails the guard, loose enough not to
// flake on slower hardware. See README for the baseline update
// workflow.
type benchBaseline struct {
	Note         string  `json:"note"`
	EnginePPS    float64 `json:"engine_pps"`
	PPSMinFactor float64 `json:"pps_min_factor"`
	// BatchPPS is the steady-state batched bytecode-VM checking rate
	// (Sequential.ProcessBatch, single shard, no dispatch queues) — the
	// hot path the BenchmarkEngineBatch* benchmarks track. Guarded by
	// the same min factor.
	BatchPPS float64 `json:"batch_pps"`
	// WirePPS is the end-to-end wire-path replay rate (netsim fabric,
	// all checkers), guarded by the same min factor as the engine rate.
	WirePPS float64 `json:"wire_pps"`
	// WireParPPS is the same wire replay on a 4-shard partitioned
	// simulator (-simshards 4). On a multi-core runner it should exceed
	// WirePPS; on a single-core container it trails it (the window
	// barriers cost ~1 handoff per microsecond of simulated time with
	// nothing to overlap), so the guard only pins it against itself —
	// catching a regression in the parallel coordinator, not demanding a
	// speedup the hardware cannot give. See EXPERIMENTS.md E15.
	WireParPPS float64 `json:"wire_par_pps"`
	// StormPPS is the wire-path replay rate with the always-violating
	// storm probe armed — every packet raises a digest at every hop into
	// the report bus. Guarded by the same min factor: a per-digest
	// allocation or lock on the publish path shows up here first.
	StormPPS float64 `json:"storm_pps"`
	// ParseIntoNs/AppendToNs are the codec hot-path costs; the guard
	// fails when either slows down by more than CodecMaxFactor.
	ParseIntoNs    float64 `json:"parse_into_ns"`
	AppendToNs     float64 `json:"append_to_ns"`
	CodecMaxFactor float64 `json:"codec_max_factor"`
	// AtomsUpdateNs is the per-rule-update latency of the incremental
	// control-plane verifier under k=8 fat-tree churn (E16); the guard
	// fails when it slows down by more than AtomsMaxFactor — catching a
	// full-partition recheck creeping into the incremental path.
	AtomsUpdateNs  float64            `json:"atoms_update_ns"`
	AtomsMaxFactor float64            `json:"atoms_max_factor"`
	PHVTolerance   float64            `json:"phv_tolerance"`
	PHVPct         map[string]float64 `json:"phv_pct"`
}

const baselinePath = "BENCH_baseline.json"

func measureEnginePPS(t testing.TB) float64 {
	res, err := experiments.RunEngineReplay(experiments.EngineReplayConfig{
		Packets: 20_000, Shards: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Forwarded != res.Counts.Packets || res.Counts.Errors != 0 {
		t.Fatalf("benign replay must forward everything: %+v", res.Counts)
	}
	return res.WallPktsPerSec
}

func measureBatchPPS(t testing.TB) float64 {
	res, err := experiments.RunBatchReplay(experiments.EngineReplayConfig{
		Packets: 20_000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Forwarded != res.Counts.Packets || res.Counts.Errors != 0 {
		t.Fatalf("benign batch replay must forward everything: %+v", res.Counts)
	}
	return res.WallPktsPerSec
}

func measureWirePPS(t testing.TB) float64 {
	res, err := experiments.RunWireReplay(experiments.WireReplayConfig{
		Packets: 20_000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredRatio != 1 || res.Rejected != 0 || res.ParseErrors != 0 {
		t.Fatalf("benign wire replay must deliver everything: delivered=%.2f rejected=%d errors=%d",
			res.DeliveredRatio, res.Rejected, res.ParseErrors)
	}
	return res.WallPktsPerSec
}

func measureWireParPPS(t testing.TB) float64 {
	res, err := experiments.RunWireReplay(experiments.WireReplayConfig{
		Packets: 20_000, Seed: 5, SimShards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredRatio != 1 || res.Rejected != 0 || res.ParseErrors != 0 {
		t.Fatalf("benign parallel wire replay must deliver everything: delivered=%.2f rejected=%d errors=%d",
			res.DeliveredRatio, res.Rejected, res.ParseErrors)
	}
	if res.Sim.Shards != 4 {
		t.Fatalf("parallel wire replay ran on %d shards, want 4", res.Sim.Shards)
	}
	return res.WallPktsPerSec
}

func measureStormPPS(t testing.TB) float64 {
	res, err := experiments.RunStorm(experiments.StormConfig{
		Packets: 20_000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Storm.Unaccounted != 0 || res.Storm.Dropped != 0 ||
		res.Storm.ExportedDigests != res.Storm.Raised {
		t.Fatalf("storm replay accounting broke: raised=%d exported=%d dropped=%d unaccounted=%d",
			res.Storm.Raised, res.Storm.ExportedDigests, res.Storm.Dropped, res.Storm.Unaccounted)
	}
	return res.Storm.WallPktsPerSec
}

// measureAtomsNs times the incremental verifier's per-rule-update cost
// on the standard E16 churn (k=8 fat-tree, 2000 mutations) and asserts
// its correctness contract on the way: clean end state and a per-update
// recheck that stays well below the partition size.
func measureAtomsNs(t testing.TB) float64 {
	res, err := experiments.RunAtomsChurn(experiments.AtomsConfig{K: 8, Updates: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outstanding != 0 || res.Raised != res.Resolved {
		t.Fatalf("atoms churn must end clean: %+v", res)
	}
	if res.MaxAffected >= res.Atoms/2 {
		t.Fatalf("atoms churn rechecked %d of %d atoms in one update — incremental property lost", res.MaxAffected, res.Atoms)
	}
	return res.ChurnNsPerUpdate
}

// codecBenchFrame mirrors the packet shape of the dataplane package's
// BenchmarkParseInto/BenchmarkAppendTo: VLAN + 24-byte Hydra blob + UDP.
func codecBenchFrame() []byte {
	pkt := &dataplane.Decoded{
		Eth: dataplane.Ethernet{
			Dst: dataplane.MACFromUint64(2), Src: dataplane.MACFromUint64(1),
			Type: dataplane.EtherTypeIPv4,
		},
		HasVLAN: true,
		VLAN:    dataplane.VLAN{VID: 42},
		HasIPv4: true,
		IPv4: dataplane.IPv4{
			TTL: 64, Protocol: dataplane.ProtoUDP,
			Src: dataplane.MustIP4("10.0.0.1"), Dst: dataplane.MustIP4("10.0.0.2"),
		},
		HasUDP:  true,
		UDP:     dataplane.UDP{SrcPort: 1234, DstPort: 80},
		Payload: []byte("benchmark payload bytes"),
	}
	pkt.InsertHydra(make([]byte, 24))
	return pkt.Serialize()
}

// measureCodecNs times the two codec hot paths with testing.Benchmark —
// the same loops as the dataplane package's benchmarks, runnable from
// the regression guard.
func measureCodecNs(t testing.TB) (parseIntoNs, appendToNs float64) {
	frame := codecBenchFrame()
	var dec dataplane.Decoded
	parse := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := dataplane.ParseInto(&dec, frame); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := dataplane.ParseInto(&dec, frame); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, dec.WireLen())
	app := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf = dec.AppendTo(buf[:0])
		}
	})
	return float64(parse.NsPerOp()), float64(app.NsPerOp())
}

// TestBenchRegressionGuard compares the current build against the
// committed baseline. Set BENCH_BASELINE_UPDATE=1 to remeasure and
// rewrite BENCH_baseline.json instead (do this deliberately, with the
// diff reviewed — the file is the contract).
func TestBenchRegressionGuard(t *testing.T) {
	rows, err := experiments.Table1()
	if err != nil {
		t.Fatal(err)
	}
	phv := make(map[string]float64, len(rows))
	for _, r := range rows {
		phv[r.Key] = r.PHVPct
	}

	if os.Getenv("BENCH_BASELINE_UPDATE") != "" {
		parseNs, appendNs := measureCodecNs(t)
		base := benchBaseline{
			Note:           "regenerate with: BENCH_BASELINE_UPDATE=1 go test -run TestBenchRegressionGuard",
			EnginePPS:      measureEnginePPS(t),
			PPSMinFactor:   0.5,
			BatchPPS:       measureBatchPPS(t),
			WirePPS:        measureWirePPS(t),
			WireParPPS:     measureWireParPPS(t),
			StormPPS:       measureStormPPS(t),
			ParseIntoNs:    parseNs,
			AppendToNs:     appendNs,
			CodecMaxFactor: 2.0,
			AtomsUpdateNs:  measureAtomsNs(t),
			AtomsMaxFactor: 3.0,
			PHVTolerance:   0.01,
			PHVPct:         phv,
		}
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %.0f pps, %d phv rows", baselinePath, base.EnginePPS, len(base.PHVPct))
		return
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("reading %s (regenerate with BENCH_BASELINE_UPDATE=1): %v", baselinePath, err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing %s: %v", baselinePath, err)
	}

	for key, want := range base.PHVPct {
		got, ok := phv[key]
		if !ok {
			t.Errorf("checker %q is in %s but no longer in Table 1 — regenerate the baseline", key, baselinePath)
			continue
		}
		if math.Abs(got-want) > base.PHVTolerance {
			t.Errorf("%s: phv_pct = %.4f, baseline %.4f (tolerance %.4f) — a compiler layout change; "+
				"if intended, regenerate the baseline", key, got, want, base.PHVTolerance)
		}
	}
	for key := range phv {
		if _, ok := base.PHVPct[key]; !ok {
			t.Errorf("checker %q has no phv_pct baseline — regenerate %s", key, baselinePath)
		}
	}

	if testing.Short() {
		t.Skip("skipping wall-clock pps guard in -short mode")
	}
	if raceEnabled {
		t.Skip("wall-clock pps guard is meaningless under the race detector")
	}
	floor := base.EnginePPS * base.PPSMinFactor
	if pps := measureEnginePPS(t); pps < floor {
		t.Errorf("engine replay ran at %.0f pps, below the guard floor %.0f (baseline %.0f × %.2f)",
			pps, floor, base.EnginePPS, base.PPSMinFactor)
	}
	if base.BatchPPS > 0 {
		batchFloor := base.BatchPPS * base.PPSMinFactor
		if pps := measureBatchPPS(t); pps < batchFloor {
			t.Errorf("batched replay ran at %.0f pps, below the guard floor %.0f (baseline %.0f × %.2f)",
				pps, batchFloor, base.BatchPPS, base.PPSMinFactor)
		}
	}
	if base.WirePPS > 0 {
		wireFloor := base.WirePPS * base.PPSMinFactor
		if pps := measureWirePPS(t); pps < wireFloor {
			t.Errorf("wire replay ran at %.0f pps, below the guard floor %.0f (baseline %.0f × %.2f)",
				pps, wireFloor, base.WirePPS, base.PPSMinFactor)
		}
	}
	if base.WireParPPS > 0 {
		parFloor := base.WireParPPS * base.PPSMinFactor
		if pps := measureWireParPPS(t); pps < parFloor {
			t.Errorf("4-shard wire replay ran at %.0f pps, below the guard floor %.0f (baseline %.0f × %.2f)",
				pps, parFloor, base.WireParPPS, base.PPSMinFactor)
		}
	}
	if base.StormPPS > 0 {
		stormFloor := base.StormPPS * base.PPSMinFactor
		if pps := measureStormPPS(t); pps < stormFloor {
			t.Errorf("storm replay ran at %.0f pps, below the guard floor %.0f (baseline %.0f × %.2f)",
				pps, stormFloor, base.StormPPS, base.PPSMinFactor)
		}
	}
	if base.AtomsUpdateNs > 0 && base.AtomsMaxFactor > 0 {
		ceil := base.AtomsUpdateNs * base.AtomsMaxFactor
		if ns := measureAtomsNs(t); ns > ceil {
			t.Errorf("atoms churn ran at %.0f ns/update, above the guard ceiling %.0f (baseline %.0f × %.1f)",
				ns, ceil, base.AtomsUpdateNs, base.AtomsMaxFactor)
		}
	}
}

// TestCodecRegressionGuard is the benchstat-style compare for the two
// wire-codec hot paths: it re-times ParseInto and AppendTo and fails
// when either exceeds the committed baseline by more than
// codec_max_factor (wall-clock, so the factor is generous — it catches
// an accidental per-parse allocation or quadratic scan, not jitter).
func TestCodecRegressionGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-clock codec guard in -short mode")
	}
	if raceEnabled {
		t.Skip("wall-clock codec guard is meaningless under the race detector")
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("reading %s (regenerate with BENCH_BASELINE_UPDATE=1): %v", baselinePath, err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing %s: %v", baselinePath, err)
	}
	if base.ParseIntoNs == 0 || base.AppendToNs == 0 || base.CodecMaxFactor == 0 {
		t.Fatalf("%s has no codec baseline — regenerate with BENCH_BASELINE_UPDATE=1", baselinePath)
	}
	parseNs, appendNs := measureCodecNs(t)
	if ceil := base.ParseIntoNs * base.CodecMaxFactor; parseNs > ceil {
		t.Errorf("ParseInto runs at %.1f ns/op, above the guard ceiling %.1f (baseline %.1f × %.1f)",
			parseNs, ceil, base.ParseIntoNs, base.CodecMaxFactor)
	}
	if ceil := base.AppendToNs * base.CodecMaxFactor; appendNs > ceil {
		t.Errorf("AppendTo runs at %.1f ns/op, above the guard ceiling %.1f (baseline %.1f × %.1f)",
			appendNs, ceil, base.AppendToNs, base.CodecMaxFactor)
	}
}
