package repro_test

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"repro/internal/experiments"
)

// benchBaseline is the committed performance envelope in
// BENCH_baseline.json. PHV usage is a deterministic compile-time
// metric, so it is guarded tightly; packets-per-second is wall-clock
// and machine-dependent, so the guard only fails when throughput drops
// below EnginePPS×PPSMinFactor — a generous factor chosen to catch
// order-of-magnitude regressions (an accidental O(n²), a lock on the
// per-packet path) without flaking on slower hardware.
type benchBaseline struct {
	Note         string             `json:"note"`
	EnginePPS    float64            `json:"engine_pps"`
	PPSMinFactor float64            `json:"pps_min_factor"`
	PHVTolerance float64            `json:"phv_tolerance"`
	PHVPct       map[string]float64 `json:"phv_pct"`
}

const baselinePath = "BENCH_baseline.json"

func measureEnginePPS(t testing.TB) float64 {
	res, err := experiments.RunEngineReplay(experiments.EngineReplayConfig{
		Packets: 20_000, Shards: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Forwarded != res.Counts.Packets || res.Counts.Errors != 0 {
		t.Fatalf("benign replay must forward everything: %+v", res.Counts)
	}
	return res.WallPktsPerSec
}

// TestBenchRegressionGuard compares the current build against the
// committed baseline. Set BENCH_BASELINE_UPDATE=1 to remeasure and
// rewrite BENCH_baseline.json instead (do this deliberately, with the
// diff reviewed — the file is the contract).
func TestBenchRegressionGuard(t *testing.T) {
	rows, err := experiments.Table1()
	if err != nil {
		t.Fatal(err)
	}
	phv := make(map[string]float64, len(rows))
	for _, r := range rows {
		phv[r.Key] = r.PHVPct
	}

	if os.Getenv("BENCH_BASELINE_UPDATE") != "" {
		base := benchBaseline{
			Note:         "regenerate with: BENCH_BASELINE_UPDATE=1 go test -run TestBenchRegressionGuard",
			EnginePPS:    measureEnginePPS(t),
			PPSMinFactor: 0.35,
			PHVTolerance: 0.01,
			PHVPct:       phv,
		}
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %.0f pps, %d phv rows", baselinePath, base.EnginePPS, len(base.PHVPct))
		return
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("reading %s (regenerate with BENCH_BASELINE_UPDATE=1): %v", baselinePath, err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing %s: %v", baselinePath, err)
	}

	for key, want := range base.PHVPct {
		got, ok := phv[key]
		if !ok {
			t.Errorf("checker %q is in %s but no longer in Table 1 — regenerate the baseline", key, baselinePath)
			continue
		}
		if math.Abs(got-want) > base.PHVTolerance {
			t.Errorf("%s: phv_pct = %.4f, baseline %.4f (tolerance %.4f) — a compiler layout change; "+
				"if intended, regenerate the baseline", key, got, want, base.PHVTolerance)
		}
	}
	for key := range phv {
		if _, ok := base.PHVPct[key]; !ok {
			t.Errorf("checker %q has no phv_pct baseline — regenerate %s", key, baselinePath)
		}
	}

	if testing.Short() {
		t.Skip("skipping wall-clock pps guard in -short mode")
	}
	floor := base.EnginePPS * base.PPSMinFactor
	if pps := measureEnginePPS(t); pps < floor {
		t.Errorf("engine replay ran at %.0f pps, below the guard floor %.0f (baseline %.0f × %.2f)",
			pps, floor, base.EnginePPS, base.PPSMinFactor)
	}
}
